module T = Proto.Types
module M = Proto.Message
module SL = Corona.State_log

type config = {
  client_port : int;
  server_port : int;
  heartbeat_interval : float;
  failure_timeout : float;
  election_timeout : float;
  reduction : SL.reduction_policy;
  access : Corona.Access_control.t;
  relaxed_membership : bool;
  server_multicast : bool;
  record_lock_journal : bool;
  wal_batching : Storage.Wal.batch_config option;
  shards : int;
  sharded_direct_views : bool;
}

let default_config =
  {
    client_port = 7000;
    server_port = 7100;
    heartbeat_interval = 0.5;
    failure_timeout = 1.6;
    election_timeout = 0.4;
    reduction = SL.No_reduction;
    access = Corona.Access_control.allow_all;
    relaxed_membership = false;
    server_multicast = false;
    record_lock_journal = false;
    wal_batching = None;
    shards = 1;
    sharded_direct_views = false;
  }

type role = Coordinator | Replica

type stats = {
  fwd_bcasts : int;
  sequenced : int;
  applied : int;
  deliveries_sent : int;
  relay_frames_sent : int;
  elections_started : int;
  took_over_at : float option;
}

(* Sharded sequencing state of a group copy (cfg.shards > 1): one state log
   per shard — disjoint (group, object-id) slices, each its own contiguous
   seqno stream and WAL — plus the cross-shard hold-back that interleaves
   barrier-stamped ops identically on every replica. *)
type sgroup = {
  sg_logs : SL.t array;
  sg_hb :
    ( T.update * T.delivery_mode * Smsg.origin_tag,
      int * int array * Smsg.shard_op )
    Ordering.Shard_holdback.t;
  sg_last_og : (int * Smsg.server_id, int) Hashtbl.t;
      (* (shard, origin server) -> last og_seq: the classic duplicate filter,
         per shard — one origin's forwards spray across shards, so a single
         per-origin watermark would not be monotone *)
}

(* Local copy of a group at a replica. [rg_log = None] while the state fetch
   is in flight. *)
type rgroup = {
  rg_id : T.group_id;
  mutable rg_persistent : bool;
  mutable rg_log : SL.t option;
  rg_local : Corona.Membership.t; (* clients of this replica *)
  mutable rg_global : T.member list;
  rg_holdback : (T.update * T.delivery_mode * Smsg.origin_tag) Ordering.Holdback.t;
  rg_last_og : (Smsg.server_id, int) Hashtbl.t; (* duplicate filter *)
  mutable rg_expecting_blob : bool; (* a State_blob is on its way *)
  mutable rg_shards : sgroup option; (* sharded-mode copy, else None *)
  mutable rg_pending_sjoins : T.member_id list;
      (* sharded joins whose barrier fired before our copy was seeded *)
}

(* A cross-shard barrier the coordinator is collecting positions for. *)
type inflight_barrier = {
  ib_bar : int;
  ib_group : T.group_id;
  ib_op : Smsg.shard_op;
  mutable ib_pos : (int * int) list; (* collected (shard, next) *)
  mutable ib_started : float; (* for the re-prepare retry *)
}

type pending_join = {
  pj_conn : Net.Tcp.conn;
  pj_transfer : T.transfer_spec;
  mutable pj_result : (int * T.member list) option; (* from Join_result *)
}

type t = {
  fabric : Net.Fabric.t;
  node_host : Net.Host.t;
  self : Smsg.server_id;
  cfg : config;
  storage : Corona.Server_storage.t;
  server_list : Smsg.server_id list;
  mutable alive : Smsg.server_id list; (* believed up, in server_list order *)
  mutable coord : Smsg.server_id;
  mutable node_role : role;
  (* coordinator state *)
  dir : Directory.t;
  mutable dir_ready : bool;
  mutable dir_waiting_on : Smsg.server_id list;
  mutable recovery_reports : (Smsg.server_id * Smsg.dir_report) list;
  mutable coord_buffer : (Smsg.server_id * Smsg.t) list; (* newest first *)
  (* replica state *)
  rgroups : (T.group_id, rgroup) Hashtbl.t;
  (* mesh *)
  peers : (Smsg.server_id, Net.Tcp.conn) Hashtbl.t;
  outbox : (Smsg.server_id, Smsg.t list) Hashtbl.t;
      (* messages for peers whose mesh connection is still handshaking *)
  mutable conn_ids : (int * Smsg.server_id) list; (* conn id -> peer *)
  (* clients *)
  conn_of_member : (T.member_id, Net.Tcp.conn) Hashtbl.t;
  mutable client_conns : Net.Tcp.conn list;
  relay_hub : Corona.Relay_hub.t;
  pool : Proto.Pool.t; (* hot-path frame buffers, leased per fan-out *)
  fan_batch : Net.Tcp.batch; (* fan-out fill buffer, refilled per fan-out *)
  (* request correlation *)
  pending_create :
    (T.group_id, Net.Tcp.conn * bool * (T.object_id * string) list) Hashtbl.t;
  pending_delete : (T.group_id, Net.Tcp.conn) Hashtbl.t;
  pending_join : (T.group_id * T.member_id, pending_join) Hashtbl.t;
  pending_lock : (T.group_id * T.lock_id * T.member_id, Net.Tcp.conn) Hashtbl.t;
  mutable fwd_seq : int;
  pending_bcast : (int, Smsg.t) Hashtbl.t; (* og_seq -> Fwd_bcast *)
  (* liveness *)
  last_seen : (Smsg.server_id, float) Hashtbl.t;
  mutable electing : bool;
  mutable elect_acks : Smsg.server_id list;
  mutable acked_candidate : Smsg.server_id option; (* earliest claim seen *)
  mutable stopped : bool;
  node_epoch : int; (* host epoch at creation; a crash orphans this node *)
  transfer_cache : Corona.Transfer.cache;
  mutable st : stats;
  (* sharded sequencing (cfg.shards > 1; all empty otherwise) *)
  mutable shard_epoch : int;
  mutable shard_owners : Smsg.server_id array; (* shard_owners.(s) sequences s *)
  seq_alloc : (T.group_id * int, int) Hashtbl.t;
      (* owner side: next seqno per (group, shard) — standalone, because the
         owner of a shard need not hold a copy of every group it sequences *)
  seq_dedup : (T.group_id * int * Smsg.server_id, int) Hashtbl.t;
      (* owner side: last og_seq sequenced per (group, shard, origin), so a
         racing resend is not stamped twice *)
  frozen : (T.group_id, int) Hashtbl.t; (* owner side: group -> barrier id *)
  freeze_q : (T.group_id, Smsg.t list) Hashtbl.t;
      (* forwards parked while frozen, newest first *)
  (* coordinator barrier engine *)
  mutable bar_next : int;
  bar_queue : (T.group_id, Smsg.shard_op list) Hashtbl.t; (* newest first *)
  mutable bar_inflight : inflight_barrier list;
  mutable barrier_journal : string list;
      (* encoded M.barrier_frame records, newest first *)
  (* shard-ownership recovery round *)
  mutable shard_waiting_on : Smsg.server_id list;
  mutable shard_reports :
    (Smsg.server_id * (T.group_id * (int * int) list) list) list;
}

let now t = Sim.Engine.now (Net.Fabric.engine t.fabric)

let id t = t.self

let host t = t.node_host

let fabric t = t.fabric

let role t = t.node_role

let coordinator_id t = t.coord

let believes_alive t = t.alive

let stats t = t.st

let transfer_cache_stats t = Corona.Transfer.cache_stats t.transfer_cache

let is_current t =
  (not t.stopped)
  && Net.Host.is_alive t.node_host
  && Net.Host.epoch t.node_host = t.node_epoch

(* --- inspection -------------------------------------------------------- *)

let groups_held t =
  Hashtbl.fold
    (fun g rg acc ->
      if rg.rg_log <> None || rg.rg_shards <> None then g :: acc else acc)
    t.rgroups []
  |> List.sort String.compare

let group_state t g =
  match Hashtbl.find_opt t.rgroups g with
  | Some { rg_log = Some log; _ } -> Some (SL.state log)
  | Some { rg_log = None; _ } | None -> None

let group_next_seqno t g =
  match Hashtbl.find_opt t.rgroups g with
  | Some { rg_log = Some log; _ } -> Some (SL.next_seqno log)
  | Some { rg_log = None; _ } | None -> None

let group_updates_from t g from =
  match Hashtbl.find_opt t.rgroups g with
  | Some { rg_log = Some log; _ } -> SL.updates_from log from
  | Some { rg_log = None; _ } | None -> []

let group_base t g =
  match Hashtbl.find_opt t.rgroups g with
  | Some { rg_log = Some log; _ } -> Some (SL.base log)
  | Some { rg_log = None; _ } | None -> None

let group_local_members t g =
  match Hashtbl.find_opt t.rgroups g with
  | Some rg -> Corona.Membership.members rg.rg_local
  | None -> []

let directory_groups t = if t.node_role = Coordinator then Directory.group_ids t.dir else []

let lock_journal t =
  List.filter_map
    (fun g ->
      match Directory.find t.dir g with
      | Some entry -> (
          match Corona.Locks.journal (Directory.locks entry) with
          | [] -> None
          | events -> Some (g, events))
      | None -> None)
    (Directory.group_ids t.dir)

(* --- sharded inspection ------------------------------------------------- *)

let group_shard_vector t g =
  match Hashtbl.find_opt t.rgroups g with
  | Some { rg_shards = Some sg; _ } ->
      Some (Ordering.Shard_holdback.positions sg.sg_hb)
  | Some _ | None -> None

(* Merged materialized objects of a sharded copy: shard slices are disjoint
   by construction, so concatenation (re-sorted by id) is the group state. *)
let group_shard_objects t g =
  match Hashtbl.find_opt t.rgroups g with
  | Some { rg_shards = Some sg; _ } ->
      let objs =
        Array.fold_left
          (fun acc log -> List.rev_append (Corona.Shared_state.objects (SL.state log)) acc)
          [] sg.sg_logs
      in
      Some (List.sort (fun (a, _) (b, _) -> String.compare a b) objs)
  | Some _ | None -> None

let barrier_journal t = List.rev t.barrier_journal

let shard_epoch t = t.shard_epoch

let shard_owners t = Array.copy t.shard_owners

let sharded t = t.cfg.shards > 1

(* --- server mesh ------------------------------------------------------- *)

(* [@@corona.cold] cuts R8 reachability here: self-delivery re-enters the
   event loop through the full dispatch tree, and treating that edge as a
   synchronous hot call would mark every handler in this module hot. The
   genuinely hot continuation (sequenced delivery) is rooted separately at
   [apply_sequenced]. *)
let rec handle_smsg t ~from msg = dispatch_smsg t ~from msg [@@corona.cold]

and send_srv t dst msg =
  if dst = t.self then handle_smsg t ~from:t.self msg
  else begin
    match Hashtbl.find_opt t.peers dst with
    | Some conn when Net.Tcp.is_open conn -> Smsg.send conn msg
    | Some _ -> () (* peer died; higher-level retries cover it *)
    | None ->
        (* The mesh handshake has not completed yet (it races the first
           client requests at startup): park the message. *)
        let q = Option.value (Hashtbl.find_opt t.outbox dst) ~default:[] in
        Hashtbl.replace t.outbox dst (msg :: q)
  end

(* --- client sending ---------------------------------------------------- *)

and send_client_encoded t conn e =
  t.st <- { t.st with deliveries_sent = t.st.deliveries_sent + 1 };
  M.send_encoded conn e

and send_client t conn resp = send_client_encoded t conn (M.pre_encode (M.Response resp))

and send_member_encoded t member e =
  match Hashtbl.find_opt t.conn_of_member member with
  | Some conn when Net.Tcp.is_open conn -> send_client_encoded t conn e
  | Some _ | None -> ()

and send_member t member resp =
  send_member_encoded t member (M.pre_encode (M.Response resp))

and fail_client t conn group reason =
  send_client t conn (M.Request_failed { group; reason })

(* Fan a response to the local members of a group, in join order: one
   serialization and one batched transmit shared by every direct recipient;
   members proxied through the relay tier collapse to one [Relay_fanout]
   frame per relay (the sharded [Shard_deliver] path rides this too). *)
and fan_local t rg ?exclude resp =
  Net.Tcp.batch_clear t.fan_batch;
  List.iter
    (fun (m : Corona.Membership.entry) ->
      let excluded =
        match exclude with Some skip -> skip = m.member | None -> false
      in
      if not excluded then
        match Hashtbl.find_opt t.conn_of_member m.member with
        | Some conn when Net.Tcp.is_open conn ->
            Net.Tcp.batch_add t.fan_batch conn
        | Some _ | None -> ())
    (Corona.Membership.entries rg.rg_local);
  let d =
    Corona.Relay_hub.deliver t.relay_hub ~pool:t.pool ~group:rg.rg_id ?exclude
      ~inner:resp t.fan_batch
  in
  t.st <-
    {
      t.st with
      deliveries_sent = t.st.deliveries_sent + d.Corona.Relay_hub.d_direct;
      relay_frames_sent = t.st.relay_frames_sent + d.Corona.Relay_hub.d_frames;
    }
[@@corona.hot]

and notify_local_membership t rg change members =
  match Corona.Membership.notify_targets rg.rg_local with
  | [] -> ()
  | targets ->
      let changed = T.changed_member change in
      let conns =
        List.filter_map
          (fun m ->
            if m = changed then None
            else
              match Hashtbl.find_opt t.conn_of_member m with
              | Some conn when Net.Tcp.is_open conn -> Some conn
              | Some _ | None -> None)
          targets
      in
      match conns with
      | [] -> ()
      | conns ->
          let e =
            M.pre_encode
              (M.Response (M.Membership_changed { group = rg.rg_id; change; members }))
          in
          t.st <-
            { t.st with deliveries_sent = t.st.deliveries_sent + List.length conns };
          M.send_batch_encoded conns e

(* --- rgroup lifecycle --------------------------------------------------- *)

and make_rgroup t group =
  let rg =
    {
      rg_id = group;
      rg_persistent = false;
      rg_log = None;
      rg_local = Corona.Membership.create ();
      rg_global = [];
      rg_holdback = Ordering.Holdback.create ();
      rg_last_og = Hashtbl.create 8;
      rg_expecting_blob = false;
      rg_shards = None;
      rg_pending_sjoins = [];
    }
  in
  Hashtbl.replace t.rgroups group rg;
  rg

and rgroup_of t group =
  match Hashtbl.find_opt t.rgroups group with
  | Some rg -> rg
  | None -> make_rgroup t group

and seed_rgroup t rg ~persistent ~at_seqno ~objects =
  let wal =
    Corona.Server_storage.wal_for t.storage ?batching:t.cfg.wal_batching rg.rg_id
  in
  let log =
    SL.create ~group:rg.rg_id ~persistent ~wal
      ~checkpoints:(Corona.Server_storage.checkpoints t.storage)
      ~policy:t.cfg.reduction ~at_seqno ~initial:objects ()
  in
  rg.rg_persistent <- persistent;
  rg.rg_log <- Some log;
  rg.rg_expecting_blob <- false;
  Ordering.Holdback.reset rg.rg_holdback ~next:at_seqno;
  complete_ready_joins t rg

and drop_rgroup t group =
  (match Hashtbl.find_opt t.rgroups group with
  | Some { rg_log = Some log; _ } -> SL.delete_durable log
  | Some { rg_shards = Some sg; _ } ->
      Array.iteri
        (fun s log ->
          SL.delete_durable log;
          Corona.Server_storage.drop_group t.storage (shard_log_name group s))
        sg.sg_logs
  | Some _ | None -> ());
  Corona.Server_storage.drop_group t.storage group;
  Hashtbl.remove t.rgroups group

(* --- join completion ---------------------------------------------------- *)

and complete_join t rg key (pj : pending_join) =
  match (rg.rg_log, pj.pj_result) with
  | Some log, Some (_, members) ->
      Hashtbl.remove t.pending_join key;
      let _group, member = key in
      let entry_role =
        match List.find_opt (fun (m : T.member) -> m.member = member) members with
        | Some m -> m.role
        | None -> T.Principal
      in
      Corona.Membership.add rg.rg_local ~member ~role:entry_role
        ~notify:true (* notify flag is tracked globally; local copy notifies all *)
        ~joined_at:(now t);
      rg.rg_global <- members;
      let p = Corona.Transfer.prepare ~cache:t.transfer_cache log pj.pj_transfer in
      if Net.Tcp.is_open pj.pj_conn then begin
        let e =
          match p.p_enc with
          | Some state_enc ->
              (* Join-storm path: splice the snapshot encoding shared by
                 every concurrent joiner at this state version. *)
              M.pre_encode_join_accepted ~group:rg.rg_id ~at_seqno:p.p_at
                ~state:p.p_state ~state_enc ~members ~multicast:false ()
          | None ->
              M.pre_encode
                (M.Response
                   (M.Join_accepted
                      {
                        group = rg.rg_id;
                        at_seqno = p.p_at;
                        state = p.p_state;
                        members;
                        multicast = false;
                      }))
        in
        send_client_encoded t pj.pj_conn e
      end
  | _ -> ()

and complete_ready_joins t rg =
  let ready =
    Hashtbl.fold
      (fun ((g, _m) as key) pj acc ->
        if g = rg.rg_id && pj.pj_result <> None then (key, pj) :: acc else acc)
      t.pending_join []
  in
  List.iter (fun (key, pj) -> complete_join t rg key pj) ready

(* --- applying sequenced updates ------------------------------------------ *)

and apply_sequenced t rg (u : T.update) mode (origin : Smsg.origin_tag) =
  (* Consume the seqno even for duplicates (re-sequenced after failover) so
     the hold-back stream stays contiguous everywhere. An empty origin marks
     a gap-repair delivery, which bypasses the duplicate filter. *)
  let duplicate =
    origin.og_server <> ""
    &&
    match Hashtbl.find_opt rg.rg_last_og origin.og_server with
    | Some last -> origin.og_seq <= last
    | None -> false
  in
  if origin.og_server <> "" then
    Hashtbl.replace rg.rg_last_og origin.og_server origin.og_seq;
  if origin.og_server = t.self then Hashtbl.remove t.pending_bcast origin.og_seq;
  if not duplicate then begin
    (match rg.rg_log with
    | Some log -> SL.apply_sequenced log u ~on_durable:(fun _ -> ())
    | None -> ());
    t.st <- { t.st with applied = t.st.applied + 1 };
    let exclude =
      match mode with T.Sender_exclusive -> Some u.sender | T.Sender_inclusive -> None
    in
    fan_local t rg ?exclude (M.Deliver u)
  end
[@@corona.hot]

and offer_sequenced t rg u mode origin =
  List.iter
    (fun (u, mode, origin) -> apply_sequenced t rg u mode origin)
    (Ordering.Holdback.offer rg.rg_holdback ~seqno:u.T.seqno (u, mode, origin));
  match Ordering.Holdback.gap rg.rg_holdback with
  | Some (from_seqno, _) ->
      send_srv t t.coord
        (Smsg.Fetch_updates { from = t.self; group = rg.rg_id; from_seqno })
  | None -> ()

(* --- sharded sequencing --------------------------------------------------- *)

and shard_owner t shard =
  if Array.length t.shard_owners = 0 then t.coord else t.shard_owners.(shard)

and shard_log_name group shard = group ^ "#" ^ string_of_int shard

and make_shard_log t group ~shard ~persistent ~at_seqno ~initial =
  let name = shard_log_name group shard in
  let wal =
    Corona.Server_storage.wal_for t.storage ?batching:t.cfg.wal_batching name
  in
  SL.create ~group:name ~persistent ~wal
    ~checkpoints:(Corona.Server_storage.checkpoints t.storage)
    ~policy:t.cfg.reduction ~at_seqno ~initial ()

and sgroup_of t rg =
  match rg.rg_shards with
  | Some sg -> sg
  | None ->
      let shards = t.cfg.shards in
      let sg =
        {
          sg_logs =
            Array.init shards (fun s ->
                make_shard_log t rg.rg_id ~shard:s ~persistent:rg.rg_persistent
                  ~at_seqno:0 ~initial:[]);
          sg_hb = Ordering.Shard_holdback.create ~shards ();
          sg_last_og = Hashtbl.create 8;
        }
      in
      rg.rg_shards <- Some sg;
      sg

(* Seed (or overwrite) a sharded copy from a snapshot: objects are routed to
   their shard's log by the same deterministic map the sequencers use, and
   each stream starts at the snapshot's per-shard position. *)
and seed_sgroup t rg ~objects ~positions =
  let shards = t.cfg.shards in
  let vec = Array.make shards 0 in
  List.iter (fun (s, n) -> if s >= 0 && s < shards then vec.(s) <- n) positions;
  let by_shard = Array.make shards [] in
  List.iter
    (fun (obj, data) ->
      let s = Ordering.Shard_map.shard_of ~shards ~group:rg.rg_id ~obj in
      by_shard.(s) <- (obj, data) :: by_shard.(s))
    objects;
  let hb =
    match rg.rg_shards with
    | Some old -> old.sg_hb
    | None -> Ordering.Shard_holdback.create ~shards ()
  in
  Ordering.Shard_holdback.reset hb ~vector:vec;
  let sg =
    {
      sg_logs =
        Array.init shards (fun s ->
            make_shard_log t rg.rg_id ~shard:s ~persistent:rg.rg_persistent
              ~at_seqno:vec.(s) ~initial:(List.rev by_shard.(s)));
      sg_hb = hb;
      sg_last_og = Hashtbl.create 8;
    }
  in
  rg.rg_shards <- Some sg;
  rg.rg_expecting_blob <- false;
  (* The adopted positions may already satisfy a parked barrier. *)
  run_shard_actions t rg sg (Ordering.Shard_holdback.poll sg.sg_hb);
  let waiting = List.rev rg.rg_pending_sjoins in
  rg.rg_pending_sjoins <- [];
  List.iter (fun member -> complete_shard_join t rg member) waiting

(* Stream positions come from the hold-back, not the logs: a re-sequenced
   duplicate consumes its slot everywhere but is never logged (the classic
   duplicate-filter contract), so the log's next seqno may trail. *)
and shard_positions sg =
  Array.to_list
    (Array.mapi (fun s n -> (s, n)) (Ordering.Shard_holdback.positions sg.sg_hb))

and shard_snapshot_objects sg =
  let objs =
    Array.fold_left
      (fun acc log -> List.rev_append (Corona.Shared_state.objects (SL.state log)) acc)
      [] sg.sg_logs
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) objs

(* One batched transmit to every server believed alive; unlike
   [coord_fan_group] the recipient set is not the group's replica list — a
   shard owner need not know the directory, and servers without a copy of
   the group simply ignore the update. Mirrors the allocation pattern of
   [coord_fan_group] (shared pre-sized message, self-delivery last). *)
and fan_all t msg =
  let s = Smsg.pre msg in
  let deliver_self = ref false in
  let conns =
    List.rev
      (List.fold_left
         (fun acc srv ->
           if srv = t.self then begin
             deliver_self := true;
             acc
           end
           else
             match Hashtbl.find_opt t.peers srv with
             | Some conn when Net.Tcp.is_open conn -> conn :: acc
             | Some _ -> acc
             | None ->
                 let q = Option.value (Hashtbl.find_opt t.outbox srv) ~default:[] in
                 Hashtbl.replace t.outbox srv (Smsg.sized_msg s :: q);
                 acc)
         [] t.alive)
  in
  if conns <> [] then Smsg.send_sized_batch conns s;
  if !deliver_self then handle_smsg t ~from:t.self msg
[@@corona.hot]

(* Owner side: stamp the next seqno of the (group, shard) stream and fan the
   sequenced update to every server. While a barrier freeze is pending for
   the group, forwards park in the freeze queue and replay on unfreeze. *)
and owner_sequence t msg ~origin ~epoch:_ ~shard ~group ~sender ~kind ~obj ~data
    ~mode =
  if shard_owner t shard <> t.self then
    (* Stale routing during reassignment: hand the forward to the server we
       believe owns the shard now (views converge via Shard_assign). *)
    send_srv t (shard_owner t shard) msg
  else if Hashtbl.mem t.frozen group then
    let q = Option.value (Hashtbl.find_opt t.freeze_q group) ~default:[] in
    Hashtbl.replace t.freeze_q group (msg :: q)
  else begin
    let dkey = (group, shard, origin.Smsg.og_server) in
    let dup =
      match Hashtbl.find_opt t.seq_dedup dkey with
      | Some last -> origin.og_seq <= last
      | None -> false
    in
    if not dup then begin
      Hashtbl.replace t.seq_dedup dkey origin.og_seq;
      let akey = (group, shard) in
      let seqno = Option.value (Hashtbl.find_opt t.seq_alloc akey) ~default:0 in
      Hashtbl.replace t.seq_alloc akey (seqno + 1);
      t.st <- { t.st with sequenced = t.st.sequenced + 1 };
      let u = { T.seqno; group; kind; obj; data; sender; timestamp = now t } in
      fan_all t
        (Smsg.Sequenced_s { epoch = t.shard_epoch; shard; origin; update = u; mode })
    end
  end

and offer_shard t rg ~shard u mode origin =
  let sg = sgroup_of t rg in
  run_shard_actions t rg sg
    (Ordering.Shard_holdback.offer sg.sg_hb ~shard ~seqno:u.T.seqno
       (u, mode, origin));
  match Ordering.Shard_holdback.gap sg.sg_hb ~shard with
  | Some (from_seqno, _) ->
      send_srv t t.coord
        (Smsg.Fetch_shard { from = t.self; group = rg.rg_id; shard; from_seqno })
  | None -> ()

and run_shard_actions t rg sg actions =
  List.iter
    (function
      | Ordering.Shard_holdback.Deliver (shard, (u, mode, origin)) ->
          apply_shard_update t rg sg shard u mode origin
      | Ordering.Shard_holdback.Barrier (bar, vector, op) ->
          apply_shard_op t rg ~bar ~vector op)
    actions

and apply_shard_update t rg sg shard (u : T.update) mode (origin : Smsg.origin_tag)
    =
  let duplicate =
    origin.og_server <> ""
    &&
    match Hashtbl.find_opt sg.sg_last_og (shard, origin.og_server) with
    | Some last -> origin.og_seq <= last
    | None -> false
  in
  if origin.og_server <> "" then
    Hashtbl.replace sg.sg_last_og (shard, origin.og_server) origin.og_seq;
  if origin.og_server = t.self then Hashtbl.remove t.pending_bcast origin.og_seq;
  if not duplicate then begin
    SL.apply_sequenced sg.sg_logs.(shard) u ~on_durable:(fun _ -> ());
    t.st <- { t.st with applied = t.st.applied + 1 };
    let exclude =
      match mode with T.Sender_exclusive -> Some u.sender | T.Sender_inclusive -> None
    in
    fan_local t rg ?exclude (M.Shard_deliver { shard; update = u })
  end
[@@corona.hot]

(* A cross-shard op fires at its stamped vector: every replica runs this at
   the same point of all N streams. *)
and apply_shard_op t rg ~bar ~vector op =
  let group = rg.rg_id in
  (match op with
  | Smsg.Op_view { change; members; origin } ->
      rg.rg_global <- members;
      (match change with
      | T.Member_left m | T.Member_crashed m ->
          ignore (Corona.Membership.remove rg.rg_local m)
      | T.Member_joined _ -> ());
      (if origin = t.self then
         match change with
         | T.Member_joined member ->
             if rg.rg_expecting_blob then
               rg.rg_pending_sjoins <- member :: rg.rg_pending_sjoins
             else complete_shard_join t rg member
         | T.Member_left _ | T.Member_crashed _ -> ());
      notify_local_membership t rg change members
  | Smsg.Op_lock { lock; member } -> (
      let key = (group, lock, member) in
      match Hashtbl.find_opt t.pending_lock key with
      | Some conn ->
          Hashtbl.remove t.pending_lock key;
          if Net.Tcp.is_open conn then
            send_client t conn (M.Lock_granted { group; lock })
      | None ->
          (* Deferred grant: reaches the member at whichever replica serves
             it; elsewhere this is a no-op. *)
          send_member t member (M.Lock_granted { group; lock })));
  fan_local t rg
    (M.Shard_view
       {
         group;
         bar;
         vector = Array.to_list vector;
         op = Smsg.shard_op_label op;
       })

(* Close a sharded join at the origin replica, at the exact point the view
   barrier fired: snapshot + per-shard baseline vector for the client. *)
and complete_shard_join t rg member =
  match Hashtbl.find_opt t.pending_join (rg.rg_id, member) with
  | None -> ()
  | Some pj ->
      let sg = sgroup_of t rg in
      Hashtbl.remove t.pending_join (rg.rg_id, member);
      let entry_role =
        match
          List.find_opt (fun (m : T.member) -> m.member = member) rg.rg_global
        with
        | Some m -> m.role
        | None -> T.Principal
      in
      Corona.Membership.add rg.rg_local ~member ~role:entry_role ~notify:true
        ~joined_at:(now t);
      if Net.Tcp.is_open pj.pj_conn then begin
        send_client t pj.pj_conn
          (M.Join_accepted
             {
               group = rg.rg_id;
               at_seqno = 0;
               state =
                 M.Snapshot { objects = shard_snapshot_objects sg; log_tail = [] };
               members = rg.rg_global;
               multicast = false;
             });
        send_client t pj.pj_conn
          (M.Shard_joined
             {
               group = rg.rg_id;
               vector =
                 Array.to_list (Ordering.Shard_holdback.positions sg.sg_hb);
             })
      end

(* --- coordinator: barrier engine ------------------------------------------ *)

and journal_barrier t ~bar ~group ~phase ~vector ~op =
  t.barrier_journal <-
    M.encode_barrier_frame
      {
        M.bf_bar = bar;
        bf_group = group;
        bf_phase = phase;
        bf_vector = vector;
        bf_op = Smsg.shard_op_label op;
      }
    :: t.barrier_journal

and barrier_submit t group op =
  let q = Option.value (Hashtbl.find_opt t.bar_queue group) ~default:[] in
  Hashtbl.replace t.bar_queue group (op :: q);
  (* One barrier in flight per group: freezing is per group, and serial
     barriers keep the owners' position reports unambiguous. *)
  if not (List.exists (fun ib -> ib.ib_group = group) t.bar_inflight) then
    barrier_start t group

and barrier_start t group =
  match List.rev (Option.value (Hashtbl.find_opt t.bar_queue group) ~default:[]) with
  | [] -> ()
  | op :: rest ->
      Hashtbl.replace t.bar_queue group (List.rev rest);
      let bar = t.bar_next in
      t.bar_next <- bar + 1;
      let ib =
        { ib_bar = bar; ib_group = group; ib_op = op; ib_pos = []; ib_started = now t }
      in
      t.bar_inflight <- ib :: t.bar_inflight;
      journal_barrier t ~bar ~group ~phase:M.Prepare ~vector:[] ~op;
      barrier_prepare_round t ib

and barrier_prepare_round t ib =
  ib.ib_started <- now t;
  let owners =
    Array.fold_left
      (fun acc o -> if List.mem o acc then acc else o :: acc)
      [] t.shard_owners
  in
  List.iter
    (fun o ->
      send_srv t o
        (Smsg.Barrier_prepare
           { bar = ib.ib_bar; epoch = t.shard_epoch; group = ib.ib_group }))
    owners

and barrier_absorb_pos t ~bar ~group ~positions =
  match
    List.find_opt (fun ib -> ib.ib_bar = bar && ib.ib_group = group) t.bar_inflight
  with
  | None -> ()
  | Some ib ->
      List.iter
        (fun (s, n) ->
          if not (List.mem_assoc s ib.ib_pos) then ib.ib_pos <- (s, n) :: ib.ib_pos)
        positions;
      if List.length ib.ib_pos = t.cfg.shards then begin
        let vector = Array.init t.cfg.shards (fun s -> List.assoc s ib.ib_pos) in
        t.bar_inflight <- List.filter (fun x -> x != ib) t.bar_inflight;
        journal_barrier t ~bar ~group ~phase:M.Commit
          ~vector:(Array.to_list vector) ~op:ib.ib_op;
        fan_all t
          (Smsg.Barrier_commit
             { bar; epoch = t.shard_epoch; group; vector; op = ib.ib_op });
        barrier_start t group
      end

(* --- shard-ownership recovery --------------------------------------------- *)

(* Owner allocators for the shards of a dead sequencer moved with it. The
   coordinator bumps the shard epoch, collects every survivor's applied
   per-shard positions, reassigns dead owners, and fans the new table with
   max positions — the fan-out is all-or-nothing per update (one batched
   transmit issues every reservation together), so the max applied position
   anywhere bounds everything any origin had acknowledged. *)
and shard_recovery t =
  if t.cfg.shards > 1 && t.node_role = Coordinator then begin
    t.shard_epoch <- t.shard_epoch + 1;
    (* Barrier ids are drawn from the epoch so a new reign (or re-round)
       never reuses a stamped id. *)
    t.bar_next <- t.shard_epoch * 1_000_000;
    t.shard_reports <- [];
    t.shard_waiting_on <- List.filter (fun s -> s <> t.self) t.alive;
    List.iter
      (fun dst ->
        if dst <> t.self then send_srv t dst (Smsg.Shard_query { from = t.self }))
      t.alive;
    t.shard_reports <- (t.self, self_shard_report t) :: t.shard_reports;
    if t.shard_waiting_on = [] then finish_shard_recovery t
    else begin
      let deadline = 2.0 *. t.cfg.election_timeout in
      let epoch_at = t.shard_epoch in
      ignore
        (Sim.Engine.schedule (Net.Fabric.engine t.fabric) ~delay:deadline
           (fun () ->
             if
               is_current t && t.shard_epoch = epoch_at
               && t.shard_waiting_on <> []
             then finish_shard_recovery t))
    end
  end

and self_shard_report t =
  Hashtbl.fold
    (fun g rg acc ->
      match rg.rg_shards with
      | Some sg -> (g, shard_positions sg) :: acc
      | None -> acc)
    t.rgroups []

and finish_shard_recovery t =
  t.shard_waiting_on <- [];
  (* Keep live owners; move each dead owner's shards to live servers,
     spreading by shard index. *)
  let live = Array.of_list t.alive in
  let n = Array.length live in
  let owners =
    Array.mapi
      (fun s o -> if n = 0 || List.mem o t.alive then o else live.(s mod n))
      t.shard_owners
  in
  t.shard_owners <- owners;
  (* Freshest applied position per (group, shard) across reports. *)
  let best : (T.group_id * int, int * Smsg.server_id) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (srv, entries) ->
      List.iter
        (fun (g, ps) ->
          List.iter
            (fun (s, next) ->
              match Hashtbl.find_opt best (g, s) with
              | Some (bn, _) when bn >= next -> ()
              | _ -> Hashtbl.replace best (g, s) (next, srv))
            ps)
        entries)
    t.shard_reports;
  t.shard_reports <- [];
  let positions =
    Hashtbl.fold (fun (g, s) (next, srv) acc -> (g, s, next, srv) :: acc) best []
  in
  fan_all t (Smsg.Shard_assign { epoch = t.shard_epoch; owners; positions });
  (* Re-run any barrier still in flight under the new owner table. *)
  List.iter
    (fun ib ->
      ib.ib_pos <- [];
      barrier_prepare_round t ib)
    t.bar_inflight

(* Re-send un-acknowledged sharded forwards to the (possibly new) owners,
   with the current epoch; the owner-side dedup and the per-shard origin
   filters make this safe whether or not the original was sequenced. *)
and resend_pending_sharded t =
  let bcasts =
    Hashtbl.fold (fun seq msg acc -> (seq, msg) :: acc) t.pending_bcast []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, msg) ->
      match msg with
      | Smsg.Fwd_bcast_s r ->
          send_srv t
            (shard_owner t r.shard)
            (Smsg.Fwd_bcast_s { r with epoch = t.shard_epoch })
      | _ -> ())
    bcasts

(* --- sharded message handling --------------------------------------------- *)

and shard_handle t ~from msg =
  match msg with
  | Smsg.Fwd_bcast_s { origin; epoch; shard; group; sender; kind; obj; data; mode }
    ->
      owner_sequence t msg ~origin ~epoch ~shard ~group ~sender ~kind ~obj ~data
        ~mode
  | Smsg.Sequenced_s { epoch; shard; origin; update; mode } ->
      (* Accept newer epochs (our Shard_assign may still be in flight); drop
         strictly stale ones — a deposed owner cannot extend a stream that
         the new owner continues. *)
      if epoch >= t.shard_epoch then begin
        if epoch > t.shard_epoch then t.shard_epoch <- epoch;
        match Hashtbl.find_opt t.rgroups update.group with
        | None -> () (* not serving this group; gap repair covers holders *)
        | Some rg -> offer_shard t rg ~shard update mode origin
      end
  | Smsg.Barrier_prepare { bar; epoch = _; group } ->
      (* Freeze the group at this owner: report positions, park forwards
         until our own commit comes back. A later prepare for the same group
         simply moves the freeze point (the coordinator serializes barriers,
         so the previous one has been committed). *)
      Hashtbl.replace t.frozen group bar;
      let positions = ref [] in
      Array.iteri
        (fun s owner ->
          if owner = t.self then
            positions :=
              (s, Option.value (Hashtbl.find_opt t.seq_alloc (group, s)) ~default:0)
              :: !positions)
        t.shard_owners;
      send_srv t from
        (Smsg.Barrier_pos { from = t.self; bar; group; positions = !positions })
  | Smsg.Barrier_pos { from = _; bar; group; positions } ->
      if t.node_role = Coordinator then barrier_absorb_pos t ~bar ~group ~positions
  | Smsg.Barrier_commit { bar; epoch = _; group; vector; op } -> (
      (* Owner side: our freeze lifts when our own commit arrives. *)
      (match Hashtbl.find_opt t.frozen group with
      | Some fbar when fbar = bar ->
          Hashtbl.remove t.frozen group;
          let parked = Option.value (Hashtbl.find_opt t.freeze_q group) ~default:[] in
          Hashtbl.remove t.freeze_q group;
          List.iter (fun m -> shard_handle t ~from:t.self m) (List.rev parked)
      | Some _ | None -> ());
      (* Replica side: park until every stream reaches its slot. *)
      match Hashtbl.find_opt t.rgroups group with
      | None -> ()
      | Some rg ->
          let sg = sgroup_of t rg in
          run_shard_actions t rg sg
            (Ordering.Shard_holdback.offer_barrier sg.sg_hb ~bar ~vector
               (bar, vector, op)))
  | Smsg.Shard_query { from } ->
      send_srv t from
        (Smsg.Shard_report { from = t.self; entries = self_shard_report t })
  | Smsg.Shard_report { from; entries } ->
      if t.node_role = Coordinator && List.mem from t.shard_waiting_on then begin
        t.shard_reports <- (from, entries) :: t.shard_reports;
        t.shard_waiting_on <- List.filter (fun s -> s <> from) t.shard_waiting_on;
        if t.shard_waiting_on = [] then finish_shard_recovery t
      end
  | Smsg.Shard_assign { epoch; owners; positions } ->
      if epoch >= t.shard_epoch then begin
        t.shard_epoch <- epoch;
        t.shard_owners <- Array.copy owners;
        List.iter
          (fun (group, shard, next, _freshest) ->
            if
              Array.length owners > shard
              && owners.(shard) = t.self
            then begin
              let akey = (group, shard) in
              let cur = Option.value (Hashtbl.find_opt t.seq_alloc akey) ~default:0 in
              if next > cur then Hashtbl.replace t.seq_alloc akey next
            end)
          positions;
        (* Freezes from the previous regime cannot be lifted by their commit
           any more (the coordinator restarts in-flight barriers): unfreeze
           and replay, routing by the new owner table. *)
        Hashtbl.reset t.frozen;
        let parked = Hashtbl.fold (fun _ q acc -> List.rev_append q acc) t.freeze_q [] in
        Hashtbl.reset t.freeze_q;
        List.iter (fun m -> shard_handle t ~from:t.self m) (List.rev parked);
        resend_pending_sharded t
      end
  | Smsg.Fetch_shard { from; group; shard; from_seqno } -> (
      match Hashtbl.find_opt t.rgroups group with
      | Some { rg_shards = Some sg; _ }
        when from <> t.self && SL.next_seqno sg.sg_logs.(shard) > from_seqno ->
          send_srv t from
            (Smsg.Shard_updates
               { group; shard; updates = SL.updates_from sg.sg_logs.(shard) from_seqno })
      | _ ->
          if t.node_role = Coordinator then begin
            (* Relay to a holder other than the requester, like the classic
               [Fetch_updates] path. *)
            match Directory.find t.dir group with
            | Some entry -> (
                match
                  List.find_opt
                    (fun h -> h <> from && h <> t.self)
                    (Directory.holders entry)
                with
                | Some holder ->
                    send_srv t holder
                      (Smsg.Fetch_shard { from; group; shard; from_seqno })
                | None -> ())
            | None -> ()
          end)
  | Smsg.Shard_updates { group; shard; updates } -> (
      match Hashtbl.find_opt t.rgroups group with
      | None -> ()
      | Some rg ->
          List.iter
            (fun (u : T.update) ->
              offer_shard t rg ~shard u T.Sender_inclusive
                { Smsg.og_server = ""; og_seq = 0 })
            updates)
  | _ -> ()

(* --- coordinator: directory operations ----------------------------------- *)

and srv_mcast_channel t =
  Net.Multicast.channel t.fabric ~name:"corona-srv"

and coord_fan_group t entry ?except msg =
  match msg with
  | Smsg.Sequenced _ when t.cfg.server_multicast ->
      (* §4.1: one transmission reaches every server; replicas that hold no
         copy of the group simply ignore the update. Gap repair covers
         best-effort losses. *)
      Net.Multicast.send (srv_mcast_channel t) ~src:t.node_host
        ~size:(Smsg.wire_size msg) (Smsg.Srv msg);
      (* The channel skips the sending host: deliver locally too. *)
      if List.mem t.self (Directory.replicas_of entry) then
        handle_smsg t ~from:t.self msg
  | _ ->
      (* Size the message once and issue one batched transmit for the whole
         star fan-out. Self-delivery (synchronous [handle_smsg]) happens
         after the peer sends are issued — a deterministic, uniform order
         regardless of where [t.self] sits in the replica list. *)
      let s = Smsg.pre msg in
      let deliver_self = ref false in
      let conns =
        List.rev
          (List.fold_left
             (fun acc srv ->
               let skipped =
                 match except with Some skip -> skip = srv | None -> false
               in
               if skipped then acc
               else if srv = t.self then begin
                 deliver_self := true;
                 acc
               end
               else
                 match Hashtbl.find_opt t.peers srv with
                 | Some conn when Net.Tcp.is_open conn -> conn :: acc
                 | Some _ -> acc (* peer died; higher-level retries cover it *)
                 | None ->
                     (* Mesh handshake not complete: park the message. *)
                     let q =
                       Option.value (Hashtbl.find_opt t.outbox srv) ~default:[]
                     in
                     Hashtbl.replace t.outbox srv (Smsg.sized_msg s :: q);
                     acc)
             []
             (Directory.replicas_of entry))
      in
      if conns <> [] then Smsg.send_sized_batch conns s;
      if !deliver_self then handle_smsg t ~from:t.self msg
[@@corona.hot]

and coord_handle t ~from msg =
  (* Directory reports and liveness must never wait behind the recovery
     buffer: a [Dir_reply] IS the recovery input — deferring it would let a
     buffered forward be sequenced against a directory that has not yet
     absorbed the other replicas' holdings, fanning the update past them
     with no later seqno to trigger gap repair. *)
  let defer =
    (not t.dir_ready)
    && (match msg with Smsg.Dir_reply _ | Smsg.Heartbeat _ -> false | _ -> true)
  in
  if defer then t.coord_buffer <- (from, msg) :: t.coord_buffer
  else begin
    match msg with
    | Smsg.Fwd_create { origin; group; creator; persistent; initial } ->
        ignore initial;
        let created =
          match t.cfg.access.can_create creator group with
          | Corona.Access_control.Deny reason -> Error reason
          | Corona.Access_control.Allow -> (
              match Directory.add_group t.dir ~group ~persistent ~first_holder:origin with
              | `Ok entry -> Ok entry
              | `Exists -> Error "group already exists")
        in
        (match created with
        | Ok entry ->
            (* Reply first: the creator seeds its copy before the backup's
               fetch arrives on the same FIFO connection. *)
            send_srv t origin (Smsg.Create_result { group; error = None });
            ensure_two_holders t entry
        | Error reason ->
            send_srv t origin (Smsg.Create_result { group; error = Some reason }))
    | Smsg.Fwd_delete { origin; group; requester } -> (
        match t.cfg.access.can_delete requester group with
        | Corona.Access_control.Deny reason ->
            send_srv t origin (Smsg.Create_result { group; error = Some reason })
        | Corona.Access_control.Allow -> (
            match Directory.find t.dir group with
            | None ->
                send_srv t origin
                  (Smsg.Create_result { group; error = Some "no such group" })
            | Some entry ->
                coord_fan_group t entry (Smsg.Delete_group { group });
                if not (List.mem origin (Directory.replicas_of entry)) then
                  send_srv t origin (Smsg.Delete_group { group });
                Directory.remove_group t.dir group))
    | Smsg.Fwd_join { origin; group; member; role = mrole; notify } -> (
        match t.cfg.access.can_join member group mrole with
        | Corona.Access_control.Deny reason ->
            send_srv t origin
              (Smsg.Join_result
                 {
                   group;
                   member;
                   error = Some reason;
                   next_seqno = 0;
                   members = [];
                   holder = None;
                 })
        | Corona.Access_control.Allow -> (
            match Directory.join t.dir ~group ~member ~role:mrole ~notify ~server:origin with
            | `No_group ->
                send_srv t origin
                  (Smsg.Join_result
                     {
                       group;
                       member;
                       error = Some "no such group";
                       next_seqno = 0;
                       members = [];
                       holder = None;
                     })
            | `Ok (entry, source) ->
                let members = Directory.members entry in
                send_srv t origin
                  (Smsg.Join_result
                     {
                       group;
                       member;
                       error = None;
                       next_seqno = Directory.next_seqno entry;
                       members;
                       holder = source;
                     });
                (* Order the state fetch behind every sequenced update by
                   sending it on the coordinator->holder FIFO channel. *)
                (match source with
                | Some holder when holder <> origin ->
                    send_srv t holder (Smsg.Fetch_state { from = origin; group })
                | Some _ | None -> ());
                ensure_two_holders t entry;
                if t.cfg.shards > 1 && not t.cfg.sharded_direct_views then
                  (* Sharded: the view change rides a cross-shard barrier so
                     every replica interleaves it at the same vector of
                     per-shard positions; the join completes at barrier
                     apply. *)
                  barrier_submit t group
                    (Smsg.Op_view
                       { change = T.Member_joined member; members; origin })
                else
                  let except = if t.cfg.relaxed_membership then Some origin else None in
                  coord_fan_group t entry ?except
                    (Smsg.Membership_update
                       { group; change = T.Member_joined member; members })))
    | Smsg.Fwd_leave { origin; group; member; crashed } -> (
        match Directory.leave t.dir ~group ~member with
        | `No_group | `Not_member -> ()
        | `Ok entry ->
            (* Force-release the member's locks. Sharded, each inherited
               grant is itself a cross-shard op — grant order relative to
               in-flight updates must be identical on every replica. *)
            List.iter
              (fun (lock, next) ->
                match next with
                | Some next_holder ->
                    if t.cfg.shards > 1 then
                      barrier_submit t group
                        (Smsg.Op_lock { lock; member = next_holder })
                    else coord_push_lock_grant t entry ~lock ~member:next_holder
                | None -> ())
              (Corona.Locks.release_all (Directory.locks entry) ~member);
            let members = Directory.members entry in
            let change = if crashed then T.Member_crashed member else T.Member_left member in
            if t.cfg.shards > 1 && not t.cfg.sharded_direct_views then
              barrier_submit t group (Smsg.Op_view { change; members; origin })
            else begin
              let except = if t.cfg.relaxed_membership then Some origin else None in
              coord_fan_group t entry ?except
                (Smsg.Membership_update { group; change; members })
            end;
            if members = [] && not (Directory.persistent entry) then begin
              coord_fan_group t entry (Smsg.Delete_group { group });
              Directory.remove_group t.dir group
            end)
    | Smsg.Fwd_bcast { origin; group; sender; kind; obj; data; mode } -> (
        match Directory.find t.dir group with
        | None -> send_srv t origin.og_server (Smsg.Bcast_reject { origin; reason = "no such group" })
        | Some entry -> (
            match Directory.member_info entry sender with
            | None ->
                send_srv t origin.og_server
                  (Smsg.Bcast_reject { origin; reason = "sender is not a member" })
            | Some info when info.mi_role = T.Observer ->
                send_srv t origin.og_server
                  (Smsg.Bcast_reject
                     { origin; reason = "observers may not update shared state" })
            | Some _ ->
                let seqno = Directory.sequence entry in
                t.st <- { t.st with sequenced = t.st.sequenced + 1 };
                let u =
                  { T.seqno; group; kind; obj; data; sender; timestamp = now t }
                in
                coord_fan_group t entry (Smsg.Sequenced { origin; update = u; mode })))
    | Smsg.Fwd_lock { origin; group; lock; member; acquire } -> (
        match Directory.find t.dir group with
        | None ->
            send_srv t origin
              (Smsg.Lock_result { group; lock; member; result = `Error "no such group" })
        | Some entry ->
            if acquire then begin
              match Corona.Locks.acquire (Directory.locks entry) ~lock ~member with
              | `Granted ->
                  (* Sharded, a grant is a cross-shard op: it must interleave
                     at the same per-shard positions on every replica, or two
                     replicas could disagree on which updates ran under the
                     lock. Locks stay barriered even under the
                     [sharded_direct_views] bug injection. *)
                  if t.cfg.shards > 1 then
                    barrier_submit t group (Smsg.Op_lock { lock; member })
                  else
                    send_srv t origin
                      (Smsg.Lock_result { group; lock; member; result = `Granted })
              | `Busy holder ->
                  send_srv t origin
                    (Smsg.Lock_result { group; lock; member; result = `Busy holder })
            end
            else begin
              match Corona.Locks.release (Directory.locks entry) ~lock ~member with
              | `Not_holder ->
                  send_srv t origin
                    (Smsg.Lock_result
                       { group; lock; member; result = `Error "not the lock holder" })
              | `Released next ->
                  send_srv t origin
                    (Smsg.Lock_result { group; lock; member; result = `Released });
                  (match next with
                  | Some next_holder ->
                      if t.cfg.shards > 1 then
                        barrier_submit t group
                          (Smsg.Op_lock { lock; member = next_holder })
                      else coord_push_lock_grant t entry ~lock ~member:next_holder
                  | None -> ())
            end)
    | Smsg.Dir_reply { from; reports } ->
        let tagged = List.map (fun r -> (from, r)) reports in
        t.recovery_reports <- tagged @ t.recovery_reports;
        Directory.rebuild t.dir tagged
    | Smsg.Heartbeat { from } ->
        Hashtbl.replace t.last_seen from (now t);
        send_srv t from (Smsg.Heartbeat_ack { from = t.self })
    | _ -> ()
  end

(* §4.1: "at least two copies of the state exist at any moment, in order to
   provide a hot standby"; when only one replica holds a group, a backup is
   elected from the other servers. *)
and ensure_two_holders t entry =
  match Directory.holders entry with
  | [ only ] -> (
      let backup =
        List.find_opt (fun s -> s <> only && s <> t.self) t.alive
        |> (function
             | Some b -> Some b
             | None -> List.find_opt (fun s -> s <> only) t.alive)
      in
      match backup with
      | Some b ->
          Directory.add_holder entry b;
          let group = Directory.group entry in
          send_srv t b (Smsg.Add_replica { group; holder = Some only });
          send_srv t only (Smsg.Fetch_state { from = b; group })
      | None -> ())
  | _ -> ()

and coord_push_lock_grant t entry ~lock ~member =
  match Directory.member_info entry member with
  | Some info ->
      send_srv t info.mi_server
        (Smsg.Lock_result
           { group = Directory.group entry; lock; member; result = `Granted })
  | None -> ()

(* --- replica: handling coordinator/peer messages -------------------------- *)

and replica_handle t ~from msg =
  match msg with
  | Smsg.Heartbeat { from } ->
      Hashtbl.replace t.last_seen from (now t);
      send_srv t from (Smsg.Heartbeat_ack { from = t.self })
  | Smsg.Heartbeat_ack { from } -> Hashtbl.replace t.last_seen from (now t)
  | Smsg.Create_result { group; error } -> (
      match Hashtbl.find_opt t.pending_create group with
      | None -> ()
      | Some (conn, persistent, initial) ->
          Hashtbl.remove t.pending_create group;
          (match error with
          | Some reason -> if Net.Tcp.is_open conn then fail_client t conn group reason
          | None ->
              let rg = rgroup_of t group in
              rg.rg_persistent <- persistent;
              if t.cfg.shards > 1 then seed_sgroup t rg ~objects:initial ~positions:[]
              else seed_rgroup t rg ~persistent ~at_seqno:0 ~objects:initial;
              if Net.Tcp.is_open conn then send_client t conn (M.Group_created { group })))
  | Smsg.Join_result { group; member; error; next_seqno; members; holder } -> (
      let key = (group, member) in
      match Hashtbl.find_opt t.pending_join key with
      | None -> ()
      | Some pj -> (
          match error with
          | Some reason ->
              Hashtbl.remove t.pending_join key;
              if Net.Tcp.is_open pj.pj_conn then fail_client t pj.pj_conn group reason
          | None ->
              pj.pj_result <- Some (next_seqno, members);
              let rg = rgroup_of t group in
              rg.rg_global <- members;
              if t.cfg.shards > 1 then begin
                (* The join completes when its view barrier fires
                   ([complete_shard_join]); here we only make sure a copy is
                   on its way. *)
                match (rg.rg_shards, holder) with
                | Some _, _ -> ()
                | None, Some _ -> rg.rg_expecting_blob <- true
                | None, None ->
                    if not rg.rg_expecting_blob then
                      seed_sgroup t rg ~objects:[] ~positions:[]
              end
              else
                match (rg.rg_log, holder) with
                | Some _, _ -> complete_join t rg key pj
                | None, Some _ -> rg.rg_expecting_blob <- true
                | None, None ->
                    if not rg.rg_expecting_blob then
                      (* We are the first holder (or the only copy was lost):
                         start from an empty state at the group's position. *)
                      seed_rgroup t rg ~persistent:false ~at_seqno:next_seqno
                        ~objects:[]))
  | Smsg.Membership_update { group; change; members } -> (
      match Hashtbl.find_opt t.rgroups group with
      | None -> ()
      | Some rg ->
          rg.rg_global <- members;
          (match change with
          | T.Member_left m | T.Member_crashed m ->
              ignore (Corona.Membership.remove rg.rg_local m)
          | T.Member_joined _ -> ());
          (* sharded_direct_views injection: views bypass the barrier, but a
             sharded join must still finish here, or the seeded bug would
             manifest as lost liveness instead of a missing barrier stamp *)
          (if t.cfg.shards > 1 then
             match change with
             | T.Member_joined member
               when Hashtbl.mem t.pending_join (group, member) ->
                 if rg.rg_expecting_blob then
                   rg.rg_pending_sjoins <- member :: rg.rg_pending_sjoins
                 else complete_shard_join t rg member
             | _ -> ());
          notify_local_membership t rg change members)
  | Smsg.Sequenced { origin; update; mode } -> (
      match Hashtbl.find_opt t.rgroups update.group with
      | None -> ()
      | Some rg -> offer_sequenced t rg update mode origin)
  | Smsg.Bcast_reject { origin; reason } ->
      ignore reason;
      if origin.og_server = t.self then Hashtbl.remove t.pending_bcast origin.og_seq
  | Smsg.Fetch_state { from = requester; group } -> (
      match Hashtbl.find_opt t.rgroups group with
      | Some ({ rg_shards = Some sg; _ } as _rg) ->
          send_srv t requester
            (Smsg.State_blob
               {
                 group;
                 at_seqno = 0;
                 objects = shard_snapshot_objects sg;
                 error = None;
                 shards = shard_positions sg;
               })
      | Some { rg_log = Some log; _ } ->
          send_srv t requester
            (Smsg.State_blob
               {
                 group;
                 at_seqno = SL.next_seqno log;
                 (* State copy for re-replication: share the materialized
                    objects with the join-state cache instead of paying a
                    fresh materialize per fetch. *)
                 objects = Corona.Transfer.snapshot_objects ~cache:t.transfer_cache log;
                 error = None;
                 shards = [];
               })
      | Some { rg_log = None; _ } | None ->
          send_srv t requester
            (Smsg.State_blob
               {
                 group;
                 at_seqno = 0;
                 objects = [];
                 error = Some "state not here";
                 shards = [];
               }))
  | Smsg.State_blob { group; at_seqno = _; objects; error; shards = blob_shards }
    when t.cfg.shards > 1 -> (
      match Hashtbl.find_opt t.rgroups group with
      | Some rg when rg.rg_shards = None || rg.rg_expecting_blob -> (
          match error with
          | None -> seed_sgroup t rg ~objects ~positions:blob_shards
          | Some _ ->
              rg.rg_expecting_blob <- false;
              (* Seed an empty sharded copy rather than stalling pending
                 joins forever. *)
              if rg.rg_shards = None then
                seed_sgroup t rg ~objects:[] ~positions:[])
      | Some _ | None -> ())
  | Smsg.State_blob { group; at_seqno; objects; error; shards = _ } -> (
      match Hashtbl.find_opt t.rgroups group with
      | Some rg when rg.rg_log = None -> (
          match error with
          | None -> seed_rgroup t rg ~persistent:rg.rg_persistent ~at_seqno ~objects
          | Some _ ->
              rg.rg_expecting_blob <- false;
              (* Complete any waiting joins from an empty state rather than
                 stalling them forever. *)
              let waiting =
                Hashtbl.fold
                  (fun (g, _) pj acc ->
                    if g = group then match pj.pj_result with
                      | Some (ns, _) -> ns :: acc
                      | None -> acc
                    else acc)
                  t.pending_join []
              in
              (match waiting with
              | ns :: _ -> seed_rgroup t rg ~persistent:false ~at_seqno:ns ~objects:[]
              | [] -> ()))
      | Some _ | None -> ())
  | Smsg.Fetch_updates { from; group; from_seqno } -> (
      match Hashtbl.find_opt t.rgroups group with
      | Some { rg_log = Some log; _ } when SL.next_seqno log > from_seqno ->
          (* We are a holder with the missing suffix: answer directly. *)
          send_srv t from
            (Smsg.Updates_blob { group; updates = SL.updates_from log from_seqno })
      | _ ->
          if t.node_role = Coordinator then begin
            (* Relay to the freshest holder other than the requester. *)
            match Directory.find t.dir group with
            | Some entry -> (
                match
                  List.find_opt (fun h -> h <> from && h <> t.self)
                    (Directory.holders entry)
                with
                | Some holder ->
                    send_srv t holder (Smsg.Fetch_updates { from; group; from_seqno })
                | None -> ())
            | None -> ()
          end)
  | Smsg.Updates_blob { group; updates } -> (
      match Hashtbl.find_opt t.rgroups group with
      | None -> ()
      | Some rg ->
          (* Repaired updates carry no origin tag; apply_sequenced skips the
             duplicate filter for them. *)
          List.iter
            (fun (u : T.update) ->
              offer_sequenced t rg u T.Sender_inclusive
                { Smsg.og_server = ""; og_seq = 0 })
            updates)
  | Smsg.Add_replica { group; holder = _ } ->
      (* The blob will follow (the coordinator ordered the fetch). *)
      let rg = rgroup_of t group in
      if rg.rg_log = None && (t.cfg.shards <= 1 || rg.rg_shards = None) then
        rg.rg_expecting_blob <- true
  | Smsg.Delete_group { group } -> (
      match Hashtbl.find_opt t.rgroups group with
      | None -> ()
      | Some rg ->
          fan_local t rg (M.Group_deleted { group });
          drop_rgroup t group)
  | Smsg.Lock_result { group; lock; member; result } -> (
      let key = (group, lock, member) in
      match Hashtbl.find_opt t.pending_lock key with
      | Some conn ->
          Hashtbl.remove t.pending_lock key;
          if Net.Tcp.is_open conn then begin
            match result with
            | `Granted -> send_client t conn (M.Lock_granted { group; lock })
            | `Busy holder -> send_client t conn (M.Lock_busy { group; lock; holder })
            | `Released -> send_client t conn (M.Lock_released { group; lock })
            | `Error reason -> fail_client t conn group reason
          end
      | None -> (
          (* Deferred grant pushed to the member. *)
          match result with
          | `Granted -> send_member t member (M.Lock_granted { group; lock })
          | `Busy _ | `Released | `Error _ -> ()))
  | Smsg.Dir_query { from } ->
      let reports =
        Hashtbl.fold
          (fun g rg acc ->
            (* Sharded copies report too (next_seqno 0: per-shard positions
               travel in the shard-recovery round, not here). *)
            if rg.rg_log = None && rg.rg_shards = None then acc
            else
              {
                Smsg.dr_group = g;
                dr_persistent = rg.rg_persistent;
                dr_next_seqno =
                  (if rg.rg_log = None then 0
                   else Ordering.Holdback.next_expected rg.rg_holdback);
                dr_members =
                  List.map
                    (fun (e : Corona.Membership.entry) ->
                      ({ T.member = e.member; role = e.role }, e.notify))
                    (Corona.Membership.entries rg.rg_local);
              }
              :: acc)
          t.rgroups []
      in
      send_srv t from (Smsg.Dir_reply { from = t.self; reports })
  | Smsg.Elect_me { from = candidate } ->
      let static_pos srv =
        let rec scan i = function
          | [] -> i
          | x :: _ when x = srv -> i
          | _ :: rest -> scan (i + 1) rest
        in
        scan 0 t.server_list
      in
      let ok =
        (not (List.mem t.coord t.alive))
        &&
        match t.acked_candidate with
        | None -> true
        | Some prev -> static_pos candidate <= static_pos prev
      in
      if ok then t.acked_candidate <- Some candidate;
      send_srv t candidate (Smsg.Elect_ack { from = t.self; candidate; ok })
  | Smsg.Elect_ack { from = voter; candidate; ok } ->
      if t.electing && candidate = t.self && ok then begin
        if not (List.mem voter t.elect_acks) then t.elect_acks <- voter :: t.elect_acks;
        let majority = (List.length t.alive / 2) + 1 in
        if List.length t.elect_acks >= majority then become_coordinator t
      end
  | Smsg.Coordinator_is { coord } -> on_new_coordinator t coord
  | Smsg.Dir_reply _ | Smsg.Fwd_create _ | Smsg.Fwd_delete _ | Smsg.Fwd_join _
  | Smsg.Fwd_leave _ | Smsg.Fwd_bcast _ | Smsg.Fwd_lock _ | Smsg.Fwd_bcast_s _
  | Smsg.Sequenced_s _ | Smsg.Barrier_prepare _ | Smsg.Barrier_pos _
  | Smsg.Barrier_commit _ | Smsg.Shard_query _ | Smsg.Shard_report _
  | Smsg.Shard_assign _ | Smsg.Fetch_shard _ | Smsg.Shard_updates _ ->
      ignore from

(* --- failure handling / election ----------------------------------------- *)

and mark_dead t srv =
  if List.mem srv t.alive then begin
    t.alive <- List.filter (fun s -> s <> srv) t.alive;
    if t.node_role = Coordinator then coord_server_died t srv
    else if srv = t.coord then start_election t
  end

and coord_server_died t srv =
  let lost_members, need_copy = Directory.remove_server t.dir srv in
  List.iter
    (fun (group, members) ->
      match Directory.find t.dir group with
      | None -> ()
      | Some entry ->
          let ms = Directory.members entry in
          List.iter
            (fun m ->
              if t.cfg.shards > 1 && not t.cfg.sharded_direct_views then
                barrier_submit t group
                  (Smsg.Op_view
                     { change = T.Member_crashed m; members = ms; origin = srv })
              else
                coord_fan_group t entry
                  (Smsg.Membership_update
                     { group; change = T.Member_crashed m; members = ms }))
            members;
          if ms = [] && not (Directory.persistent entry) then begin
            coord_fan_group t entry (Smsg.Delete_group { group });
            Directory.remove_group t.dir group
          end)
    lost_members;
  (* Restore the two-copy invariant (§4.1). *)
  List.iter
    (fun (group, surviving) ->
      match (Directory.find t.dir group, surviving) with
      | Some entry, Some holder ->
          let backup =
            List.find_opt
              (fun s -> s <> holder && not (List.mem s (Directory.holders entry)))
              t.alive
          in
          (match backup with
          | Some b ->
              Directory.add_holder entry b;
              send_srv t b (Smsg.Add_replica { group; holder = Some holder });
              send_srv t holder (Smsg.Fetch_state { from = b; group })
          | None -> ())
      | Some _, None | None, _ -> ())
    need_copy;
  (* The dead server's shard allocators died with it: reassign its shards
     under a new epoch before any stream extends past the loss. *)
  if t.cfg.shards > 1 && Array.exists (fun o -> o = srv) t.shard_owners then
    shard_recovery t

and start_election t =
  if (not t.electing) && t.node_role = Replica && not (List.mem t.coord t.alive)
  then begin
    t.electing <- true;
    t.st <- { t.st with elections_started = t.st.elections_started + 1 };
    attempt_claim t
  end

and claim t =
  if t.electing && is_current t then begin
    t.elect_acks <- [ t.self ];
    t.acked_candidate <- Some t.self;
    List.iter
      (fun dst -> if dst <> t.self then send_srv t dst (Smsg.Elect_me { from = t.self }))
      t.alive;
    let majority = (List.length t.alive / 2) + 1 in
    if List.length t.elect_acks >= majority then become_coordinator t
    else
      (* Retry: acks may be lost, or peers may not yet suspect. *)
      ignore
        (Sim.Engine.schedule (Net.Fabric.engine t.fabric) ~delay:t.cfg.election_timeout
           (fun () -> claim t))
  end

and attempt_claim t =
  if t.electing && is_current t then begin
    let rec rank i = function
      | [] -> i
      | s :: _ when s = t.self -> i
      | s :: rest -> if List.mem s t.alive then rank (i + 1) rest else rank i rest
    in
    let r = rank 0 t.server_list in
    if r = 0 then claim t
    else
      (* Escalating timeout (§4.2): rank k claims after k·t of silence,
         implicitly asserting that the k servers ahead of it are down too —
         whether or not the failure detector confirmed it (it cannot, across
         a partition). An earlier-listed live candidate claims first and
         wins the ack race. *)
      ignore
        (Sim.Engine.schedule (Net.Fabric.engine t.fabric)
           ~delay:(float_of_int r *. t.cfg.election_timeout)
           (fun () -> if t.electing then claim t))
  end

and become_coordinator t =
  if t.electing then begin
    t.electing <- false;
    t.acked_candidate <- None;
    t.node_role <- Coordinator;
    t.coord <- t.self;
    (* Liveness bookkeeping restarts from the takeover: entries left over
       from before (e.g. the mesh-setup hello) must not read as silence. *)
    List.iter (fun srv -> Hashtbl.replace t.last_seen srv (now t)) t.alive;
    t.dir_ready <- false;
    t.dir_waiting_on <- List.filter (fun s -> s <> t.self) t.alive;
    t.st <- { t.st with took_over_at = Some (now t) };
    List.iter
      (fun dst ->
        if dst <> t.self then begin
          send_srv t dst (Smsg.Coordinator_is { coord = t.self });
          send_srv t dst (Smsg.Dir_query { from = t.self })
        end)
      t.alive;
    (* Include our own local holdings. *)
    self_dir_report t;
    (* Open for sequencing once everyone reported, or after a settle
       timeout. *)
    let deadline = 2.0 *. t.cfg.election_timeout in
    ignore
      (Sim.Engine.schedule (Net.Fabric.engine t.fabric) ~delay:deadline (fun () ->
           if not t.dir_ready then finish_directory_recovery t));
    (* Our own un-acknowledged forwards go through the new sequencer (i.e.,
       ourselves); they sit in the buffer until the directory is ready. *)
    resend_pending t
  end

and self_dir_report t =
  Hashtbl.iter
    (fun g rg ->
      (* Sharded copies count as holdings too: the group-wide seqno is
         meaningless there (per-shard positions travel in the shard-recovery
         round instead), so they report 0. *)
      if rg.rg_log <> None || rg.rg_shards <> None then begin
        let report =
          {
            Smsg.dr_group = g;
            dr_persistent = rg.rg_persistent;
            dr_next_seqno =
              (if rg.rg_log = None then 0
               else Ordering.Holdback.next_expected rg.rg_holdback);
            dr_members =
              List.map
                (fun (e : Corona.Membership.entry) ->
                  ({ T.member = e.member; role = e.role }, e.notify))
                (Corona.Membership.entries rg.rg_local);
          }
        in
        t.recovery_reports <- (t.self, report) :: t.recovery_reports;
        Directory.rebuild t.dir [ (t.self, report) ]
      end)
    t.rgroups

and finish_directory_recovery t =
  t.dir_ready <- true;
  (* Heal sequence gaps left by the crash: any replica whose copy is behind
     the group's recovered position gets the missing suffix from the
     freshest reporter. *)
  let reports = t.recovery_reports in
  t.recovery_reports <- [];
  let by_group : (T.group_id, (Smsg.server_id * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (srv, (r : Smsg.dir_report)) ->
      let prev = Option.value (Hashtbl.find_opt by_group r.dr_group) ~default:[] in
      Hashtbl.replace by_group r.dr_group ((srv, r.dr_next_seqno) :: prev))
    reports;
  Hashtbl.iter
    (fun group positions ->
      let freshest, max_next =
        List.fold_left
          (fun (bs, bn) (srv, n) -> if n > bn then (srv, n) else (bs, bn))
          ("", -1) positions
      in
      List.iter
        (fun (srv, n) ->
          if n < max_next then
            send_srv t freshest
              (Smsg.Fetch_updates { from = srv; group; from_seqno = n }))
        positions)
    by_group;
  let buffered = List.rev t.coord_buffer in
  t.coord_buffer <- [];
  List.iter (fun (from, msg) -> coord_handle t ~from msg) buffered;
  (* Sharded ownership recovers with the directory: takeover and heal both
     land here, and sequencing must not resume under a dead owner table. *)
  shard_recovery t

and on_new_coordinator t coord =
  if coord <> t.coord || t.electing then begin
    t.coord <- coord;
    t.electing <- false;
    t.acked_candidate <- None;
    if coord <> t.self then t.node_role <- Replica;
    if not (List.mem coord t.alive) then
      t.alive <-
        List.filter (fun s -> List.mem s t.alive || s = coord) t.server_list;
    Hashtbl.replace t.last_seen coord (now t);
    resend_pending t
  end

(* After a coordinator change, re-send everything not yet acknowledged:
   broadcasts (deduplicated by origin tag), joins, creates, deletes and lock
   requests (the directory join is idempotent; lock re-acquire by the same
   member is idempotent too). *)
and resend_pending t =
  let bcasts =
    Hashtbl.fold (fun seq msg acc -> (seq, msg) :: acc) t.pending_bcast []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, msg) ->
      match msg with
      | Smsg.Fwd_bcast_s r ->
          send_srv t
            (shard_owner t r.shard)
            (Smsg.Fwd_bcast_s { r with epoch = t.shard_epoch })
      | _ -> send_srv t t.coord msg)
    bcasts;
  Hashtbl.iter
    (fun (group, member) (pj : pending_join) ->
      (* A sharded join is not done at [Join_result]: it completes when the
         view barrier applies, and that barrier may have died with the old
         coordinator — re-forward regardless of the recorded result. *)
      if pj.pj_result = None || t.cfg.shards > 1 then
        send_srv t t.coord
          (Smsg.Fwd_join
             { origin = t.self; group; member; role = T.Principal; notify = true }))
    t.pending_join;
  Hashtbl.iter
    (fun group (_conn, persistent, initial) ->
      send_srv t t.coord
        (Smsg.Fwd_create { origin = t.self; group; creator = ""; persistent; initial }))
    t.pending_create;
  Hashtbl.iter
    (fun group _conn ->
      send_srv t t.coord (Smsg.Fwd_delete { origin = t.self; group; requester = "" }))
    t.pending_delete;
  Hashtbl.iter
    (fun (group, lock, member) _conn ->
      send_srv t t.coord
        (Smsg.Fwd_lock { origin = t.self; group; lock; member; acquire = true }))
    t.pending_lock

(* --- dispatch ------------------------------------------------------------ *)

and dispatch_smsg t ~from msg =
  if is_current t then begin
    match msg with
    | Smsg.Heartbeat _ | Smsg.Heartbeat_ack _ | Smsg.Elect_me _ | Smsg.Elect_ack _
    | Smsg.Coordinator_is _ | Smsg.Dir_query _ ->
        replica_handle t ~from msg
    | Smsg.Fwd_create _ | Smsg.Fwd_delete _ | Smsg.Fwd_join _ | Smsg.Fwd_leave _
    | Smsg.Fwd_bcast _ | Smsg.Fwd_lock _ ->
        if t.node_role = Coordinator then coord_handle t ~from msg
    | Smsg.Dir_reply _ ->
        if t.node_role = Coordinator then begin
          coord_handle t ~from msg;
          t.dir_waiting_on <- List.filter (fun s -> s <> from) t.dir_waiting_on;
          if t.dir_waiting_on = [] && not t.dir_ready then finish_directory_recovery t
        end
    | Smsg.Fwd_bcast_s _ | Smsg.Sequenced_s _ | Smsg.Barrier_prepare _
    | Smsg.Barrier_pos _ | Smsg.Barrier_commit _ | Smsg.Shard_query _
    | Smsg.Shard_report _ | Smsg.Shard_assign _ | Smsg.Fetch_shard _
    | Smsg.Shard_updates _ ->
        shard_handle t ~from msg
    | Smsg.Create_result _ | Smsg.Join_result _ | Smsg.Membership_update _
    | Smsg.Sequenced _ | Smsg.Bcast_reject _ | Smsg.Fetch_state _ | Smsg.State_blob _
    | Smsg.Add_replica _ | Smsg.Delete_group _ | Smsg.Lock_result _
    | Smsg.Fetch_updates _ | Smsg.Updates_blob _ ->
        replica_handle t ~from msg
  end

(* --- client request handling ---------------------------------------------- *)

let adopt_group_state t group ~at_seqno ~objects =
  let rg = rgroup_of t group in
  let persistent = rg.rg_persistent in
  rg.rg_log <- None;
  Hashtbl.reset rg.rg_last_og;
  seed_rgroup t rg ~persistent ~at_seqno ~objects

let adopt_group_state_sharded t group ~objects ~positions =
  let rg = rgroup_of t group in
  (* Post-heal resync: barriers parked under the previous regime are dead
     (the healed coordinator re-prepares in-flight ones). *)
  (match rg.rg_shards with
  | Some sg -> Ordering.Shard_holdback.clear_barriers sg.sg_hb
  | None -> ());
  seed_sgroup t rg ~objects ~positions

let admin_heal t ~coordinator =
  t.alive <- t.server_list;
  t.electing <- false;
  t.coord <- coordinator;
  Hashtbl.reset t.last_seen;
  if coordinator = t.self then begin
    t.node_role <- Coordinator;
    t.dir_ready <- false;
    t.dir_waiting_on <- List.filter (fun s -> s <> t.self) t.alive;
    List.iter
      (fun dst -> if dst <> t.self then send_srv t dst (Smsg.Dir_query { from = t.self }))
      t.alive;
    self_dir_report t;
    ignore
      (Sim.Engine.schedule (Net.Fabric.engine t.fabric)
         ~delay:(2.0 *. t.cfg.election_timeout)
         (fun () -> if not t.dir_ready then finish_directory_recovery t))
  end
  else begin
    t.node_role <- Replica;
    resend_pending t
  end

let handle_client_request t conn (req : M.request) =
  match req with
  | M.Create_group { group; creator; persistent; initial } ->
      Hashtbl.replace t.pending_create group (conn, persistent, initial);
      send_srv t t.coord
        (Smsg.Fwd_create { origin = t.self; group; creator; persistent; initial })
  | M.Delete_group { group; requester } ->
      Hashtbl.replace t.pending_delete group conn;
      send_srv t t.coord (Smsg.Fwd_delete { origin = t.self; group; requester })
  | M.Join { group; member; role = mrole; transfer; notify } ->
      Hashtbl.replace t.conn_of_member member conn;
      Hashtbl.replace t.pending_join (group, member)
        { pj_conn = conn; pj_transfer = transfer; pj_result = None };
      (* §4.1 relaxation: a join "does not directly affect the other
         members", so co-located members hear about it before the
         coordinator round-trip; the coordinator skips this replica in its
         Membership_update fan. *)
      (if t.cfg.relaxed_membership then
         match Hashtbl.find_opt t.rgroups group with
         | Some rg ->
             let members =
               List.filter (fun (m : T.member) -> m.member <> member) rg.rg_global
               @ [ { T.member; role = mrole } ]
             in
             notify_local_membership t rg (T.Member_joined member) members
         | None -> ());
      send_srv t t.coord
        (Smsg.Fwd_join { origin = t.self; group; member; role = mrole; notify })
  | M.Leave { group; member } ->
      (* §4.1 relaxation: a leave does not directly affect the others, so
         acknowledge locally before the coordinator round-trip. *)
      (match Hashtbl.find_opt t.rgroups group with
      | Some rg ->
          ignore (Corona.Membership.remove rg.rg_local member);
          send_client t conn (M.Left { group });
          if t.cfg.relaxed_membership then
            notify_local_membership t rg (T.Member_left member)
              (List.filter (fun (m : T.member) -> m.member <> member) rg.rg_global)
      | None -> fail_client t conn group "no such group");
      send_srv t t.coord
        (Smsg.Fwd_leave { origin = t.self; group; member; crashed = false })
  | M.Get_membership { group } -> (
      match Hashtbl.find_opt t.rgroups group with
      | Some rg -> send_client t conn (M.Membership_info { group; members = rg.rg_global })
      | None -> fail_client t conn group "no such group")
  | M.Bcast { group; sender; kind; obj; data; mode } ->
      let og_seq = t.fwd_seq in
      t.fwd_seq <- og_seq + 1;
      let origin = { Smsg.og_server = t.self; og_seq } in
      t.st <- { t.st with fwd_bcasts = t.st.fwd_bcasts + 1 };
      if t.cfg.shards > 1 then begin
        (* Sharded: route by the deterministic (group, object) map straight
           to the shard's sequencer — the coordinator is not on the data
           path. *)
        let shard =
          Ordering.Shard_map.shard_of ~shards:t.cfg.shards ~group ~obj
        in
        let msg =
          Smsg.Fwd_bcast_s
            {
              origin;
              epoch = t.shard_epoch;
              shard;
              group;
              sender;
              kind;
              obj;
              data;
              mode;
            }
        in
        Hashtbl.replace t.pending_bcast og_seq msg;
        send_srv t (shard_owner t shard) msg
      end
      else begin
        let msg =
          Smsg.Fwd_bcast { origin; group; sender; kind; obj; data; mode }
        in
        Hashtbl.replace t.pending_bcast og_seq msg;
        send_srv t t.coord msg
      end
  | M.Acquire_lock { group; lock; member } ->
      Hashtbl.replace t.pending_lock (group, lock, member) conn;
      send_srv t t.coord
        (Smsg.Fwd_lock { origin = t.self; group; lock; member; acquire = true })
  | M.Release_lock { group; lock; member } ->
      Hashtbl.replace t.pending_lock (group, lock, member) conn;
      send_srv t t.coord
        (Smsg.Fwd_lock { origin = t.self; group; lock; member; acquire = false })
  | M.Reduce_log { group; member = _ } -> (
      (* Log reduction is a local matter: each holder trims its own copy. *)
      match Hashtbl.find_opt t.rgroups group with
      | Some { rg_log = Some log; _ } ->
          if Corona.State_log.log_length log = 0 then
            send_client t conn
              (M.Log_reduced { group; upto = Corona.State_log.snapshot_seqno log })
          else
            Corona.State_log.reduce log ~on_done:(fun ~upto ->
                if Net.Tcp.is_open conn then send_client t conn (M.Log_reduced { group; upto }))
      | Some { rg_log = None; _ } | None -> fail_client t conn group "no such group")
  | M.Resend _ ->
      (* §6 sender-assisted recovery is a single-server feature; replicated
         groups restore lost suffixes from other holders instead. *)
      ()
  | M.Ping { nonce } -> send_client t conn (M.Pong { nonce })
  | M.Relay_register { relay } ->
      let r = Corona.Relay_hub.register t.relay_hub ~relay ~conn ~at:(now t) in
      send_client t conn
        (M.Relay_registered { relay; index = r.Corona.Relay_hub.r_index });
      send_client t conn
        (M.Relay_slice
           {
             relay;
             lo = r.Corona.Relay_hub.r_index;
             hi = r.Corona.Relay_hub.r_index + 1;
           })
  | M.Relay_proxy { relay } ->
      Corona.Relay_hub.register_proxy t.relay_hub ~relay ~conn
  | M.Relay_heartbeat { relay; members } ->
      Corona.Relay_hub.heartbeat t.relay_hub ~relay ~members ~at:(now t)

let handle_client_disconnect t conn reason =
  (match Corona.Relay_hub.conn_closed t.relay_hub conn with
  | Corona.Relay_hub.Control r -> (
      (* A relay died; its proxied connections die with it and the ordinary
         per-member cleanup below handles the members. The next alive
         sibling is told it now fronts the dead relay's slice. *)
      match Corona.Relay_hub.sibling t.relay_hub r with
      | Some s when Net.Tcp.is_open s.Corona.Relay_hub.r_conn ->
          send_client t s.Corona.Relay_hub.r_conn
            (M.Relay_slice
               {
                 relay = s.Corona.Relay_hub.r_id;
                 lo = r.Corona.Relay_hub.r_index;
                 hi = r.Corona.Relay_hub.r_index + 1;
               })
      | Some _ | None -> ())
  | Corona.Relay_hub.Proxied _ | Corona.Relay_hub.Not_relay -> ());
  t.client_conns <- List.filter (fun c -> Net.Tcp.id c <> Net.Tcp.id conn) t.client_conns;
  let members_on_conn =
    Hashtbl.fold
      (fun member c acc -> if Net.Tcp.id c = Net.Tcp.id conn then member :: acc else acc)
      t.conn_of_member []
  in
  let crashed = reason <> Net.Tcp.Graceful in
  List.iter
    (fun member ->
      Hashtbl.remove t.conn_of_member member;
      Hashtbl.iter
        (fun group rg ->
          if Corona.Membership.mem rg.rg_local member then begin
            ignore (Corona.Membership.remove rg.rg_local member);
            if t.cfg.relaxed_membership then begin
              let change =
                if crashed then T.Member_crashed member else T.Member_left member
              in
              notify_local_membership t rg change
                (List.filter (fun (m : T.member) -> m.member <> member) rg.rg_global)
            end;
            send_srv t t.coord (Smsg.Fwd_leave { origin = t.self; group; member; crashed })
          end)
        t.rgroups)
    members_on_conn

(* --- liveness loop --------------------------------------------------------- *)

let heartbeat_tick t =
  if is_current t then begin
    let now_ = now t in
    if t.node_role = Replica then begin
      send_srv t t.coord (Smsg.Heartbeat { from = t.self });
      match Hashtbl.find_opt t.last_seen t.coord with
      | Some seen when now_ -. seen > t.cfg.failure_timeout -> mark_dead t t.coord
      | Some _ -> ()
      | None -> Hashtbl.replace t.last_seen t.coord now_
    end
    else
      List.iter
        (fun srv ->
          if srv <> t.self then begin
            match Hashtbl.find_opt t.last_seen srv with
            | Some seen when now_ -. seen > t.cfg.failure_timeout -> mark_dead t srv
            | Some _ -> ()
            | None -> Hashtbl.replace t.last_seen srv now_
          end)
        t.alive;
    if t.cfg.shards > 1 then begin
      (* A position report may have been lost with a crashed owner or a
         dropped connection: re-run the prepare round for stuck barriers. *)
      if t.node_role = Coordinator then
        List.iter
          (fun ib ->
            if now_ -. ib.ib_started > t.cfg.election_timeout then begin
              ib.ib_pos <- [];
              barrier_prepare_round t ib
            end)
          t.bar_inflight;
      (* A parked barrier stalls forever if the updates short of its vector
         died with their sequencer: fetch the missing suffixes. *)
      Hashtbl.iter
        (fun group rg ->
          match rg.rg_shards with
          | None -> ()
          | Some sg ->
              List.iter
                (fun (shard, from_seqno) ->
                  send_srv t t.coord
                    (Smsg.Fetch_shard { from = t.self; group; shard; from_seqno }))
                (Ordering.Shard_holdback.stalled_shards sg.sg_hb))
        t.rgroups
    end
  end;
  is_current t

(* --- construction ----------------------------------------------------------- *)

let wire_peer t peer_id conn =
  Hashtbl.replace t.peers peer_id conn;
  (match Hashtbl.find_opt t.outbox peer_id with
  | Some queued ->
      Hashtbl.remove t.outbox peer_id;
      List.iter (Smsg.send conn) (List.rev queued)
  | None -> ());
  t.conn_ids <- (Net.Tcp.id conn, peer_id) :: t.conn_ids;
  Net.Tcp.set_on_close conn (fun reason ->
      if is_current t && reason = Net.Tcp.Peer_crashed then mark_dead t peer_id);
  Net.Tcp.set_receiver conn (fun ~size:_ payload ->
      match payload with
      | Smsg.Srv msg -> dispatch_smsg t ~from:peer_id msg
      | M.Corona _ | _ -> ())

let accept_peer t conn =
  (* Identity arrives with the first message carrying a [from]/origin. *)
  Net.Tcp.set_receiver conn (fun ~size:_ payload ->
      match payload with
      | Smsg.Srv (Smsg.Heartbeat { from }) ->
          if not (Hashtbl.mem t.peers from) then wire_peer t from conn;
          dispatch_smsg t ~from (Smsg.Heartbeat { from })
      | Smsg.Srv msg ->
          let from =
            match List.assoc_opt (Net.Tcp.id conn) t.conn_ids with
            | Some p -> p
            | None -> "?"
          in
          dispatch_smsg t ~from msg
      | M.Corona _ | _ -> ())

let accept_client t conn =
  t.client_conns <- conn :: t.client_conns;
  Net.Tcp.set_on_close conn (fun reason ->
      if is_current t then handle_client_disconnect t conn reason);
  Net.Tcp.set_receiver conn (fun ~size:_ payload ->
      match payload with
      | M.Corona (M.Request req) -> if is_current t then handle_client_request t conn req
      | M.Corona (M.Response _) | _ -> ())

let create fabric node_host ?(config = default_config) ~storage ~server_list
    ~coordinator () =
  let self = Net.Host.name node_host in
  let t =
    {
      fabric;
      node_host;
      self;
      cfg = config;
      storage;
      server_list;
      alive = server_list;
      coord = coordinator;
      node_role = (if self = coordinator then Coordinator else Replica);
      dir = Directory.create ~record_lock_journal:config.record_lock_journal ();
      dir_ready = true;
      dir_waiting_on = [];
      recovery_reports = [];
      coord_buffer = [];
      rgroups = Hashtbl.create 16;
      peers = Hashtbl.create 16;
      outbox = Hashtbl.create 8;
      conn_ids = [];
      conn_of_member = Hashtbl.create 64;
      client_conns = [];
      relay_hub = Corona.Relay_hub.create ();
      pool = Proto.Pool.create ();
      fan_batch = Net.Tcp.batch_create ();
      pending_create = Hashtbl.create 8;
      pending_delete = Hashtbl.create 8;
      pending_join = Hashtbl.create 16;
      pending_lock = Hashtbl.create 8;
      fwd_seq = 0;
      pending_bcast = Hashtbl.create 16;
      last_seen = Hashtbl.create 16;
      electing = false;
      elect_acks = [];
      acked_candidate = None;
      stopped = false;
      node_epoch = Net.Host.epoch node_host;
      transfer_cache = Corona.Transfer.create_cache ();
      shard_epoch = 0;
      shard_owners =
        (if config.shards > 1 then
           Ordering.Shard_map.initial_owners ~shards:config.shards server_list
         else [||]);
      seq_alloc = Hashtbl.create 16;
      seq_dedup = Hashtbl.create 16;
      frozen = Hashtbl.create 4;
      freeze_q = Hashtbl.create 4;
      bar_next = 0;
      bar_queue = Hashtbl.create 4;
      bar_inflight = [];
      barrier_journal = [];
      shard_waiting_on = [];
      shard_reports = [];
      st =
        {
          fwd_bcasts = 0;
          sequenced = 0;
          applied = 0;
          deliveries_sent = 0;
          relay_frames_sent = 0;
          elections_started = 0;
          took_over_at = None;
        };
    }
  in
  if config.server_multicast then
    Net.Multicast.join
      (Net.Multicast.channel fabric ~name:"corona-srv")
      node_host ~key:self
      ~handler:(fun ~size:_ payload ->
        match payload with
        | Smsg.Srv (Smsg.Sequenced _ as msg) ->
            (* Sender identity travels in the origin tag; "from" is only
               used for reply routing, which Sequenced never needs. *)
            dispatch_smsg t ~from:t.coord msg
        | Smsg.Srv _ | _ -> ())
      ();
  ignore (Net.Tcp.listen fabric node_host ~port:config.server_port ~on_accept:(accept_peer t));
  ignore (Net.Tcp.listen fabric node_host ~port:config.client_port ~on_accept:(accept_client t));
  Sim.Engine.periodic (Net.Fabric.engine fabric) ~every:config.heartbeat_interval
    (fun () -> heartbeat_tick t);
  t

let connect_peers t nodes =
  let my_index =
    let rec find i = function
      | [] -> i
      | s :: _ when s = t.self -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 t.server_list
  in
  List.iter
    (fun peer ->
      let peer_id = peer.self in
      let peer_index =
        let rec find i = function
          | [] -> i
          | s :: _ when s = peer_id -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 t.server_list
      in
      if peer_index > my_index then
        Net.Tcp.connect t.fabric ~src:t.node_host ~dst:peer.node_host
          ~port:t.cfg.server_port
          ~on_connected:(fun conn ->
            wire_peer t peer_id conn;
            (* Hello: lets the acceptor map the connection to us. *)
            Smsg.send conn (Smsg.Heartbeat { from = t.self }))
          ~on_failed:(fun () -> ())
          ())
    nodes

let shutdown t =
  t.stopped <- true;
  List.iter (fun c -> if Net.Tcp.is_open c then Net.Tcp.close c) t.client_conns;
  Hashtbl.iter (fun _ c -> if Net.Tcp.is_open c then Net.Tcp.close c) t.peers
