(** The coordinator's group directory.

    Control state only — no shared-object payloads live here. For each group
    it tracks: persistence, the global membership (with each member's role,
    notify flag and serving replica), the {e holders} (replicas that keep a
    copy of the group's shared state — the paper's invariant is at least two
    whenever possible, §4.1), the per-group sequence counter, and the
    group-wide lock table. *)

type member_info = {
  mi_role : Proto.Types.role;
  mi_notify : bool;
  mi_server : Smsg.server_id;
}

type entry

type t

val create : ?record_lock_journal:bool -> unit -> t
(** [record_lock_journal] (default [false]) makes every group's lock table
    keep its grant journal ({!Corona.Locks.journal}) for invariant
    checking. *)

val group_ids : t -> Proto.Types.group_id list

val find : t -> Proto.Types.group_id -> entry option

val group : entry -> Proto.Types.group_id

val persistent : entry -> bool

val next_seqno : entry -> int

val holders : entry -> Smsg.server_id list

val members : entry -> Proto.Types.member list
(** Join order. *)

val member_info : entry -> Proto.Types.member_id -> member_info option

val locks : entry -> Corona.Locks.t

val add_group :
  t ->
  group:Proto.Types.group_id ->
  persistent:bool ->
  first_holder:Smsg.server_id ->
  [ `Ok of entry | `Exists ]

val remove_group : t -> Proto.Types.group_id -> unit

val join :
  t ->
  group:Proto.Types.group_id ->
  member:Proto.Types.member_id ->
  role:Proto.Types.role ->
  notify:bool ->
  server:Smsg.server_id ->
  [ `Ok of entry * Smsg.server_id option | `No_group ]
(** Record the member; returns the entry and, when the serving replica is
    not yet a holder, an existing holder it should fetch the state from
    (the serving replica becomes a holder). *)

val leave :
  t ->
  group:Proto.Types.group_id ->
  member:Proto.Types.member_id ->
  [ `Ok of entry | `No_group | `Not_member ]

val sequence : entry -> int
(** Allocate the next sequence number. *)

val bump_seqno : entry -> int -> unit
(** Raise the counter to at least the given value (directory recovery). *)

val replicas_of : entry -> Smsg.server_id list
(** Servers that must receive the group's sequenced updates and membership
    changes: every holder plus every member-serving replica. O(1): the list
    is maintained eagerly at join/leave/holder mutations, so the
    per-broadcast fan-out read allocates nothing. *)

val servers_with_members : entry -> Smsg.server_id list

val add_holder : entry -> Smsg.server_id -> unit

val remove_server :
  t ->
  Smsg.server_id ->
  ((Proto.Types.group_id * Proto.Types.member_id list) list
  * (Proto.Types.group_id * Smsg.server_id option) list)
(** Purge a crashed server. Returns (per-group members lost) and (groups
    whose holder count fell below two, with a surviving holder to copy from
    — [None] when the last copy died). *)

val notify_targets : entry -> (Proto.Types.member_id * Smsg.server_id) list
(** Members subscribed to membership notifications, with their replicas. *)

val rebuild : t -> (Smsg.server_id * Smsg.dir_report) list -> unit
(** Directory recovery after coordinator failover: union the replicas'
    reports — membership is the union of local memberships, the sequence
    counter the max, every reporter a holder. *)
