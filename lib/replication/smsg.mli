(** Server-to-server protocol of the replicated Corona service (§4).

    Servers form a star for sequencing — replicas forward client broadcasts
    to the coordinator, which assigns sequence numbers and multicasts them to
    the replicas serving the group — plus a full mesh for control traffic:
    state fetches, heartbeats, election, and directory recovery.

    Unlike the client protocol (which has a real binary codec), server
    messages carry a structural {!wire_size} so the simulator charges honest
    byte counts without a second codec. *)

type server_id = string

(** Deduplication tag for a forwarded broadcast: the origin replica numbers
    its forwards so a re-send after coordinator failover is not sequenced
    twice. *)
type origin_tag = { og_server : server_id; og_seq : int }

(** Per-group directory snapshot a replica reports during coordinator
    recovery. *)
type dir_report = {
  dr_group : Proto.Types.group_id;
  dr_persistent : bool;
  dr_next_seqno : int;
  dr_members : (Proto.Types.member * bool) list;
      (** local members of that replica, with their notify flag *)
}

(** Cross-shard operation carried by a {!t.Barrier_commit}: every replica
    applies it exactly when its per-shard streams reach the stamped vector,
    so all replicas interleave it identically with all N streams. *)
type shard_op =
  | Op_view of {
      change : Proto.Types.membership_change;
      members : Proto.Types.member list;
      origin : server_id;
          (** replica serving the joining/leaving client, which completes the
              client's pending call when the barrier fires *)
    }
  | Op_lock of { lock : Proto.Types.lock_id; member : Proto.Types.member_id }

val shard_op_label : shard_op -> string
(** Short human label for traces and journals. *)

type t =
  (* liveness *)
  | Heartbeat of { from : server_id }
  | Heartbeat_ack of { from : server_id }
  (* group lifecycle (replica -> coordinator -> replica) *)
  | Fwd_create of {
      origin : server_id;
      group : Proto.Types.group_id;
      creator : Proto.Types.member_id;
      persistent : bool;
      initial : (Proto.Types.object_id * string) list;
    }
  | Create_result of { group : Proto.Types.group_id; error : string option }
  | Fwd_delete of {
      origin : server_id;
      group : Proto.Types.group_id;
      requester : Proto.Types.member_id;
    }
  | Delete_group of { group : Proto.Types.group_id }
      (** coordinator -> every replica of the group *)
  (* membership *)
  | Fwd_join of {
      origin : server_id;
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      role : Proto.Types.role;
      notify : bool;
    }
  | Join_result of {
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      error : string option;
      next_seqno : int;
      members : Proto.Types.member list;
      holder : server_id option;
          (** a replica that already has the state, to fetch from *)
    }
  | Fwd_leave of {
      origin : server_id;
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      crashed : bool;
    }
  | Membership_update of {
      group : Proto.Types.group_id;
      change : Proto.Types.membership_change;
      members : Proto.Types.member list;
    }  (** coordinator -> replicas of the group (they notify local clients) *)
  (* sequencing *)
  | Fwd_bcast of {
      origin : origin_tag;
      group : Proto.Types.group_id;
      sender : Proto.Types.member_id;
      kind : Proto.Types.update_kind;
      obj : Proto.Types.object_id;
      data : string;
      mode : Proto.Types.delivery_mode;
    }
  | Sequenced of {
      origin : origin_tag;
      update : Proto.Types.update;
      mode : Proto.Types.delivery_mode;
    }  (** coordinator -> replicas of the group, in sequence order *)
  | Bcast_reject of { origin : origin_tag; reason : string }
  (* state replication *)
  | Fetch_state of { from : server_id; group : Proto.Types.group_id }
  | State_blob of {
      group : Proto.Types.group_id;
      at_seqno : int;
      objects : (Proto.Types.object_id * string) list;
      error : string option;
      shards : (int * int) list;
          (** per-shard (shard, next) positions of the snapshot; [[]] for
              classic single-stream groups *)
    }
  | Add_replica of {
      group : Proto.Types.group_id;
      holder : server_id option;
    }  (** coordinator asks a server to become a (backup) holder *)
  | Fetch_updates of {
      from : server_id;
      group : Proto.Types.group_id;
      from_seqno : int;
    }  (** gap repair: replica -> coordinator (relayed to a holder) *)
  | Updates_blob of {
      group : Proto.Types.group_id;
      updates : Proto.Types.update list;
    }  (** holder -> stale replica: the missing sequenced updates *)
  (* locks (coordinator-owned in replicated mode) *)
  | Fwd_lock of {
      origin : server_id;
      group : Proto.Types.group_id;
      lock : Proto.Types.lock_id;
      member : Proto.Types.member_id;
      acquire : bool;
    }
  | Lock_result of {
      group : Proto.Types.group_id;
      lock : Proto.Types.lock_id;
      member : Proto.Types.member_id;
      result : [ `Granted | `Busy of Proto.Types.member_id | `Released | `Error of string ];
    }
  (* election and directory recovery *)
  | Elect_me of { from : server_id }
  | Elect_ack of { from : server_id; candidate : server_id; ok : bool }
  | Coordinator_is of { coord : server_id }
  | Dir_query of { from : server_id }
  | Dir_reply of { from : server_id; reports : dir_report list }
  (* sharded sequencing (§ DESIGN.md "Sharded sequencing") *)
  | Fwd_bcast_s of {
      origin : origin_tag;
      epoch : int;
      shard : int;
      group : Proto.Types.group_id;
      sender : Proto.Types.member_id;
      kind : Proto.Types.update_kind;
      obj : Proto.Types.object_id;
      data : string;
      mode : Proto.Types.delivery_mode;
    }  (** origin replica -> owner of [shard]: sequence this broadcast *)
  | Sequenced_s of {
      epoch : int;
      shard : int;
      origin : origin_tag;
      update : Proto.Types.update;
      mode : Proto.Types.delivery_mode;
    }  (** shard owner -> every server, in the shard's stream order *)
  | Barrier_prepare of { bar : int; epoch : int; group : Proto.Types.group_id }
      (** coordinator -> each shard owner: freeze the group's streams and
          report your positions *)
  | Barrier_pos of {
      from : server_id;
      bar : int;
      group : Proto.Types.group_id;
      positions : (int * int) list;
          (** (shard, next) for the shards [from] owns *)
    }
  | Barrier_commit of {
      bar : int;
      epoch : int;
      group : Proto.Types.group_id;
      vector : int array;
      op : shard_op;
    }  (** coordinator -> every server: the stamped cross-shard op *)
  | Shard_query of { from : server_id }
      (** coordinator -> every server during shard-ownership recovery *)
  | Shard_report of {
      from : server_id;
      entries : (Proto.Types.group_id * (int * int) list) list;
          (** per group, the (shard, next) positions this server has applied *)
    }
  | Shard_assign of {
      epoch : int;
      owners : server_id array;  (** [owners.(s)] sequences shard [s] *)
      positions : (Proto.Types.group_id * int * int * server_id) list;
          (** (group, shard, next, freshest holder) seeding new allocators *)
    }
  | Fetch_shard of {
      from : server_id;
      group : Proto.Types.group_id;
      shard : int;
      from_seqno : int;
    }  (** per-shard gap repair, answered from the owner's retained log *)
  | Shard_updates of {
      group : Proto.Types.group_id;
      shard : int;
      updates : Proto.Types.update list;
    }

type Net.Payload.t += Srv of t
  (** Transport payload for the server mesh. *)

val wire_size : t -> int
(** Structural estimate of the encoded size in bytes (header + fields +
    payload data). *)

val send : Net.Tcp.conn -> t -> unit

type sized
(** A message paired with its wire size, computed once — fan-out paths
    share one [sized] value across all recipient servers. *)

val pre : t -> sized

val sized_msg : sized -> t

val sized_size : sized -> int

val send_sized : Net.Tcp.conn -> sized -> unit

val send_sized_batch : Net.Tcp.conn list -> sized -> unit
(** Fan a pre-sized message out over many connections via
    {!Net.Tcp.send_batch} (one batched fabric transmit). *)

val pp : Format.formatter -> t -> unit
(** Constructor name plus key fields, for traces. *)
