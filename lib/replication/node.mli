(** A server of the replicated Corona service (§4).

    Nodes form a star over a full TCP mesh: one node is the {e coordinator}
    — the sequencer that assigns monotonically increasing per-group sequence
    numbers, maintains the group {!Directory} and the group-wide lock tables
    — while the others are {e replicas} that serve clients directly, keep
    copies of the shared state of the groups their clients belong to, and
    forward broadcasts to the coordinator for sequencing.

    Fault tolerance (§4.2, fail-stop model): heartbeats between each replica
    and the coordinator with timeout-based detection (TCP resets accelerate
    it); on coordinator failure the first live server in the startup list
    claims the role with escalating timeouts and assumes it on half+1
    acknowledgments, then rebuilds the directory by querying every replica;
    replicas re-send their un-sequenced forwards to the new coordinator
    (duplicates are filtered by per-origin monotone tags). On replica
    failure the coordinator purges its members and re-replicates every group
    that dropped below two state copies. *)

type config = {
  client_port : int;
  server_port : int;
  heartbeat_interval : float;
  failure_timeout : float;  (** silence before declaring a peer dead *)
  election_timeout : float;  (** escalation unit of the paper's election *)
  reduction : Corona.State_log.reduction_policy;
  access : Corona.Access_control.t;
  relaxed_membership : bool;
      (** §4.1 relaxation: the origin replica notifies its local clients of
          joins/leaves immediately, without waiting for the coordinator
          round-trip *)
  server_multicast : bool;
      (** §4.1: "it is possible to use IP-multicast for broadcasting
          messages among the servers, while also maintaining point-to-point
          connections" — when on, the coordinator fans [Sequenced] updates
          out on one inter-server channel; control traffic and recovery stay
          on the TCP mesh *)
  record_lock_journal : bool;
      (** keep the directory's per-group lock grant journals in memory for
          invariant checking ({!Check}); off by default *)
  wal_batching : Storage.Wal.batch_config option;
      (** WAL group commit for the per-group logs (see {!Corona.Server}):
          appends arriving while the disk is busy coalesce into one physical
          write. [None] (default) issues one write per record. *)
  shards : int;
      (** Deployment-time sequencing shards. [1] (default) keeps the classic
          single-sequencer path. [> 1] partitions each group's keyspace over
          N independent per-(group, shard) seqno streams by the
          deterministic {!Ordering.Shard_map}; shard [s] is sequenced by the
          owner in the epoch's owner table, not by the coordinator. Ops that
          span shards (views, lock grants) ride a two-phase cross-shard
          barrier stamped with a vector of per-shard positions. *)
  sharded_direct_views : bool;
      (** Bug injection for corona-check (default off): sharded membership
          views skip the cross-shard barrier and fan as classic direct
          [Membership_update]s — replicas then interleave the view at
          different per-shard points, which the cross-shard total-order
          oracle must catch. Lock grants stay barriered even when on. *)
}

val default_config : config
(** Ports 7000/7100, 0.5 s heartbeats, 1.6 s failure timeout, 0.4 s election
    unit, no auto reduction, allow-all access, relaxation and server
    multicast off. *)

type role = Coordinator | Replica

type t

val create :
  Net.Fabric.t ->
  Net.Host.t ->
  ?config:config ->
  storage:Corona.Server_storage.t ->
  server_list:Smsg.server_id list ->
  coordinator:Smsg.server_id ->
  unit ->
  t
(** Start a node. [server_list] is the startup-ordered list every server
    knows (it determines election priority); [coordinator] names the initial
    coordinator. The node id is its host name. Call {!connect_peers} once
    all nodes of the cluster exist. *)

val connect_peers : t -> t list -> unit
(** Open mesh connections to peers later in the list (each pair connects
    once; accepting sides learn the link via the handshake hello). *)

val id : t -> Smsg.server_id

val host : t -> Net.Host.t

val fabric : t -> Net.Fabric.t

val role : t -> role

val coordinator_id : t -> Smsg.server_id

val believes_alive : t -> Smsg.server_id list
(** Servers this node currently considers up (including itself). *)

val groups_held : t -> Proto.Types.group_id list
(** Groups this node keeps a state copy of. *)

val group_state : t -> Proto.Types.group_id -> Corona.Shared_state.t option

val group_next_seqno : t -> Proto.Types.group_id -> int option
(** Next sequence number this node's copy expects. *)

val group_updates_from : t -> Proto.Types.group_id -> int -> Proto.Types.update list
(** Retained updates of the local copy (for reconciliation). *)

val group_base : t -> Proto.Types.group_id -> ((Proto.Types.object_id * string) list * int) option
(** The local copy's base state and the sequence number it reflects (initial
    objects or last reduction checkpoint); the retained log starts there. *)

val group_local_members : t -> Proto.Types.group_id -> Proto.Types.member list

val directory_groups : t -> Proto.Types.group_id list
(** Coordinator only: groups in the directory ([] on replicas). *)

val lock_journal : t -> (Proto.Types.group_id * Corona.Locks.event list) list
(** Non-empty lock grant journals of this node's directory (a node that was
    ever coordinator carries the journals accumulated during its tenure;
    requires [config.record_lock_journal]). *)

(** {2 Sharded sequencing} *)

val sharded : t -> bool
(** [config.shards > 1]. *)

val shard_epoch : t -> int
(** Current shard-ownership epoch this node has adopted. *)

val shard_owners : t -> Smsg.server_id array
(** Owner table of the adopted epoch: index [s] sequences shard [s] (a copy;
    [[||]] unsharded). *)

val group_shard_vector : t -> Proto.Types.group_id -> int array option
(** Applied per-shard positions of the local sharded copy — the next
    expected seqno of each stream. [None] if no sharded copy here. *)

val group_shard_objects :
  t -> Proto.Types.group_id -> (Proto.Types.object_id * string) list option
(** Merged object view of the local sharded copy: every shard's objects,
    sorted by id (shards cover disjoint slices). *)

val barrier_journal : t -> string list
(** Encoded {!Proto.Message.barrier_frame} records journaled while this node
    coordinated cross-shard barriers, oldest first: a [Prepare] per barrier
    start, a [Commit] (with the stamped vector) per fan. *)

val adopt_group_state :
  t ->
  Proto.Types.group_id ->
  at_seqno:int ->
  objects:(Proto.Types.object_id * string) list ->
  unit
(** Partition reconciliation hook (§4.2): overwrite the local copy of a
    group with the resolved state. The application chooses the resolution;
    this applies it. *)

val adopt_group_state_sharded :
  t ->
  Proto.Types.group_id ->
  objects:(Proto.Types.object_id * string) list ->
  positions:(int * int) list ->
  unit
(** Sharded counterpart of {!adopt_group_state}: overwrite the local sharded
    copy with resolved objects (re-routed to shards by the deterministic
    map) and per-shard stream positions. Barriers parked under the previous
    regime are dropped (the healed coordinator re-prepares in-flight
    ones). *)

val admin_heal : t -> coordinator:Smsg.server_id -> unit
(** After a partition heals: accept [coordinator] as the single coordinator
    again, consider every listed server alive (heartbeats re-prune real
    failures), and — on the coordinator itself — re-run directory recovery
    so membership and sequence counters re-converge. *)

type stats = {
  fwd_bcasts : int;  (** broadcasts forwarded to the coordinator *)
  sequenced : int;  (** updates sequenced (coordinator role) *)
  applied : int;  (** sequenced updates applied to local copies *)
  deliveries_sent : int;  (** messages pushed to local clients *)
  relay_frames_sent : int;
      (** [Relay_fanout] frames sent to relays fronting local members —
          one per relay per broadcast, not per member *)
  elections_started : int;
  took_over_at : float option;  (** when this node became coordinator *)
}

val stats : t -> stats

val transfer_cache_stats : t -> int * int
(** [(hits, misses)] of this node's join-state snapshot cache (join storms
    and state-copy fetches share one materialize+encode per state
    version). *)

val shutdown : t -> unit
