type side = {
  s_base_objects : (Proto.Types.object_id * string) list;
  s_base_seqno : int;
  s_updates : Proto.Types.update list;
}

type divergence = {
  d_group : Proto.Types.group_id;
  d_common_seqno : int;
  d_a_suffix : Proto.Types.update list;
  d_b_suffix : Proto.Types.update list;
}

type resolution =
  | Rollback
  | Adopt_a
  | Adopt_b
  | Fork of { suffix_a : string; suffix_b : string }

type outcome = {
  o_groups : (Proto.Types.group_id * (Proto.Types.object_id * string) list * int) list;
}

let update_equal (a : Proto.Types.update) (b : Proto.Types.update) =
  a.seqno = b.seqno && a.sender = b.sender && a.kind = b.kind && a.obj = b.obj
  && a.data = b.data

let find_divergence ~group ~a ~b =
  let rec scan a b =
    match (a, b) with
    | ua :: ra, ub :: rb when update_equal ua ub -> scan ra rb
    | _ -> (a, b)
  in
  let a_suffix, b_suffix = scan a b in
  let common =
    match (a_suffix, b_suffix) with
    | (u : Proto.Types.update) :: _, _ -> u.seqno
    | [], (u : Proto.Types.update) :: _ -> u.seqno
    | [], [] -> (
        match List.rev a with
        | (u : Proto.Types.update) :: _ -> u.seqno + 1
        | [] -> 0)
  in
  { d_group = group; d_common_seqno = common; d_a_suffix = a_suffix; d_b_suffix = b_suffix }

let is_consistent d = d.d_a_suffix = [] && d.d_b_suffix = []

let materialize base updates =
  let state = Corona.Shared_state.of_objects base in
  List.iter (Corona.Shared_state.apply state) updates;
  (* Cold reconciliation path over a throwaway state instance: there is no
     cache this could share with. *)
  (Corona.Shared_state.objects state [@corona.allow "R7"])

let side_state_upto side upto =
  materialize side.s_base_objects
    (List.filter (fun (u : Proto.Types.update) -> u.seqno < upto) side.s_updates)

let side_state side =
  materialize side.s_base_objects side.s_updates

let side_end side =
  match List.rev side.s_updates with
  | (u : Proto.Types.update) :: _ -> u.seqno + 1
  | [] -> side.s_base_seqno

let resolve ~side_a ~side_b d resolution =
  match resolution with
  | Rollback ->
      (* Either side can reconstruct the consistent state from its own
         checkpoint plus the common prefix. *)
      { o_groups = [ (d.d_group, side_state_upto side_a d.d_common_seqno, d.d_common_seqno) ] }
  | Adopt_a -> { o_groups = [ (d.d_group, side_state side_a, side_end side_a) ] }
  | Adopt_b -> { o_groups = [ (d.d_group, side_state side_b, side_end side_b) ] }
  | Fork { suffix_a; suffix_b } ->
      {
        o_groups =
          [
            (d.d_group ^ suffix_a, side_state side_a, side_end side_a);
            (d.d_group ^ suffix_b, side_state side_b, side_end side_b);
          ];
      }
