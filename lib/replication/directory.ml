type member_info = {
  mi_role : Proto.Types.role;
  mi_notify : bool;
  mi_server : Smsg.server_id;
}

type entry = {
  e_group : Proto.Types.group_id;
  e_persistent : bool;
  mutable e_next_seqno : int;
  e_members : (Proto.Types.member_id, member_info) Hashtbl.t;
  mutable e_order : Proto.Types.member_id list; (* join order *)
  mutable e_holders : Smsg.server_id list; (* first = oldest *)
  mutable e_replicas : Smsg.server_id list;
      (* holders + servers with members, sorted; maintained eagerly at every
         membership/holder mutation so [replicas_of] — read once per
         sequenced fan-out — is a field read, not a sort/append (R8). *)
  e_locks : Corona.Locks.t;
}

type t = {
  entries : (Proto.Types.group_id, entry) Hashtbl.t;
  record_lock_journal : bool;
}

let create ?(record_lock_journal = false) () =
  { entries = Hashtbl.create 16; record_lock_journal }

let group_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.entries [] |> List.sort String.compare

let find t group = Hashtbl.find_opt t.entries group

let group e = e.e_group

let persistent e = e.e_persistent

let next_seqno e = e.e_next_seqno

let holders e = e.e_holders

let members e =
  List.filter_map
    (fun m ->
      Option.map
        (fun info -> { Proto.Types.member = m; role = info.mi_role })
        (Hashtbl.find_opt e.e_members m))
    e.e_order

let member_info e m = Hashtbl.find_opt e.e_members m

let locks e = e.e_locks

let servers_with_members e =
  Hashtbl.fold
    (fun _ info acc -> if List.mem info.mi_server acc then acc else info.mi_server :: acc)
    e.e_members []
  |> List.sort String.compare

(* Mutation-time only: every caller runs on a membership/holder change
   (join, leave, failover), never on the per-broadcast fan-out path. *)
let recompute_replicas e =
  e.e_replicas <- List.sort_uniq String.compare (e.e_holders @ servers_with_members e)

let replicas_of e = e.e_replicas

let add_group t ~group ~persistent ~first_holder =
  if Hashtbl.mem t.entries group then `Exists
  else begin
    let e =
      {
        e_group = group;
        e_persistent = persistent;
        e_next_seqno = 0;
        e_members = Hashtbl.create 8;
        e_order = [];
        e_holders = [ first_holder ];
        e_replicas = [ first_holder ];
        e_locks = Corona.Locks.create ~record_journal:t.record_lock_journal ();
      }
    in
    Hashtbl.replace t.entries group e;
    `Ok e
  end

let remove_group t group = Hashtbl.remove t.entries group

let join t ~group ~member ~role ~notify ~server =
  match find t group with
  | None -> `No_group
  | Some e ->
      if not (Hashtbl.mem e.e_members member) then e.e_order <- e.e_order @ [ member ];
      Hashtbl.replace e.e_members member
        { mi_role = role; mi_notify = notify; mi_server = server };
      if List.mem server e.e_holders then begin
        recompute_replicas e;
        `Ok (e, None)
      end
      else begin
        let source = match e.e_holders with h :: _ -> Some h | [] -> None in
        e.e_holders <- e.e_holders @ [ server ];
        recompute_replicas e;
        `Ok (e, source)
      end

let leave t ~group ~member =
  match find t group with
  | None -> `No_group
  | Some e ->
      if not (Hashtbl.mem e.e_members member) then `Not_member
      else begin
        Hashtbl.remove e.e_members member;
        e.e_order <- List.filter (fun m -> m <> member) e.e_order;
        recompute_replicas e;
        `Ok e
      end

let sequence e =
  let n = e.e_next_seqno in
  e.e_next_seqno <- n + 1;
  n

let bump_seqno e n = if n > e.e_next_seqno then e.e_next_seqno <- n

let add_holder e server =
  if not (List.mem server e.e_holders) then begin
    e.e_holders <- e.e_holders @ [ server ];
    recompute_replicas e
  end

let remove_server t server =
  let lost_members = ref [] in
  let need_copy = ref [] in
  Hashtbl.iter
    (fun group e ->
      let members_here =
        Hashtbl.fold
          (fun m info acc -> if info.mi_server = server then m :: acc else acc)
          e.e_members []
      in
      List.iter (fun m -> Hashtbl.remove e.e_members m) members_here;
      e.e_order <- List.filter (fun m -> not (List.mem m members_here)) e.e_order;
      if members_here <> [] then lost_members := (group, List.rev members_here) :: !lost_members;
      if List.mem server e.e_holders then begin
        e.e_holders <- List.filter (fun s -> s <> server) e.e_holders;
        if List.length e.e_holders < 2 then
          need_copy :=
            (group, (match e.e_holders with h :: _ -> Some h | [] -> None))
            :: !need_copy
      end;
      recompute_replicas e)
    t.entries;
  (List.rev !lost_members, List.rev !need_copy)

let notify_targets e =
  List.filter_map
    (fun m ->
      match Hashtbl.find_opt e.e_members m with
      | Some info when info.mi_notify -> Some (m, info.mi_server)
      | Some _ | None -> None)
    e.e_order

let rebuild t reports =
  List.iter
    (fun (server, (r : Smsg.dir_report)) ->
      let e =
        match find t r.dr_group with
        | Some e -> e
        | None -> (
            match
              add_group t ~group:r.dr_group ~persistent:r.dr_persistent
                ~first_holder:server
            with
            | `Ok e -> e
            | `Exists -> Option.get (find t r.dr_group))
      in
      bump_seqno e r.dr_next_seqno;
      add_holder e server;
      List.iter
        (fun ((m : Proto.Types.member), notify) ->
          if not (Hashtbl.mem e.e_members m.member) then
            e.e_order <- e.e_order @ [ m.member ];
          Hashtbl.replace e.e_members m.member
            { mi_role = m.role; mi_notify = notify; mi_server = server })
        r.dr_members;
      recompute_replicas e)
    reports
