type server_id = string

type origin_tag = { og_server : server_id; og_seq : int }

type dir_report = {
  dr_group : Proto.Types.group_id;
  dr_persistent : bool;
  dr_next_seqno : int;
  dr_members : (Proto.Types.member * bool) list;
}

type t =
  | Heartbeat of { from : server_id }
  | Heartbeat_ack of { from : server_id }
  | Fwd_create of {
      origin : server_id;
      group : Proto.Types.group_id;
      creator : Proto.Types.member_id;
      persistent : bool;
      initial : (Proto.Types.object_id * string) list;
    }
  | Create_result of { group : Proto.Types.group_id; error : string option }
  | Fwd_delete of {
      origin : server_id;
      group : Proto.Types.group_id;
      requester : Proto.Types.member_id;
    }
  | Delete_group of { group : Proto.Types.group_id }
  | Fwd_join of {
      origin : server_id;
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      role : Proto.Types.role;
      notify : bool;
    }
  | Join_result of {
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      error : string option;
      next_seqno : int;
      members : Proto.Types.member list;
      holder : server_id option;
    }
  | Fwd_leave of {
      origin : server_id;
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      crashed : bool;
    }
  | Membership_update of {
      group : Proto.Types.group_id;
      change : Proto.Types.membership_change;
      members : Proto.Types.member list;
    }
  | Fwd_bcast of {
      origin : origin_tag;
      group : Proto.Types.group_id;
      sender : Proto.Types.member_id;
      kind : Proto.Types.update_kind;
      obj : Proto.Types.object_id;
      data : string;
      mode : Proto.Types.delivery_mode;
    }
  | Sequenced of {
      origin : origin_tag;
      update : Proto.Types.update;
      mode : Proto.Types.delivery_mode;
    }
  | Bcast_reject of { origin : origin_tag; reason : string }
  | Fetch_state of { from : server_id; group : Proto.Types.group_id }
  | State_blob of {
      group : Proto.Types.group_id;
      at_seqno : int;
      objects : (Proto.Types.object_id * string) list;
      error : string option;
    }
  | Add_replica of { group : Proto.Types.group_id; holder : server_id option }
  | Fetch_updates of {
      from : server_id;
      group : Proto.Types.group_id;
      from_seqno : int;
    }
  | Updates_blob of {
      group : Proto.Types.group_id;
      updates : Proto.Types.update list;
    }
  | Fwd_lock of {
      origin : server_id;
      group : Proto.Types.group_id;
      lock : Proto.Types.lock_id;
      member : Proto.Types.member_id;
      acquire : bool;
    }
  | Lock_result of {
      group : Proto.Types.group_id;
      lock : Proto.Types.lock_id;
      member : Proto.Types.member_id;
      result :
        [ `Granted | `Busy of Proto.Types.member_id | `Released | `Error of string ];
    }
  | Elect_me of { from : server_id }
  | Elect_ack of { from : server_id; candidate : server_id; ok : bool }
  | Coordinator_is of { coord : server_id }
  | Dir_query of { from : server_id }
  | Dir_reply of { from : server_id; reports : dir_report list }

type Net.Payload.t += Srv of t

let header = 8

let str s = 4 + String.length s

let pairs_size ps =
  List.fold_left (fun acc (k, v) -> acc + str k + str v) 4 ps

let members_size ms =
  List.fold_left (fun acc (m : Proto.Types.member) -> acc + str m.member + 1) 4 ms

let update_size (u : Proto.Types.update) =
  8 + str u.group + 1 + str u.obj + str u.data + str u.sender + 8

let tag_size tag = str tag.og_server + 8

let report_size r =
  str r.dr_group + 1 + 8
  + List.fold_left (fun acc (m, _) -> acc + str m.Proto.Types.member + 2) 4 r.dr_members

let wire_size t =
  header
  +
  match t with
  | Heartbeat { from } | Heartbeat_ack { from } -> str from
  | Fwd_create { origin; group; creator; initial; _ } ->
      str origin + str group + str creator + 1 + pairs_size initial
  | Create_result { group; error } ->
      str group + (match error with Some e -> str e | None -> 1)
  | Fwd_delete { origin; group; requester } -> str origin + str group + str requester
  | Delete_group { group } -> str group
  | Fwd_join { origin; group; member; _ } -> str origin + str group + str member + 2
  | Join_result { group; member; error; members; holder; _ } ->
      str group + str member + 8 + members_size members
      + (match error with Some e -> str e | None -> 1)
      + (match holder with Some h -> str h | None -> 1)
  | Fwd_leave { origin; group; member; _ } -> str origin + str group + str member + 1
  | Membership_update { group; members; _ } -> str group + 8 + members_size members
  | Fwd_bcast { origin; group; sender; obj; data; _ } ->
      tag_size origin + str group + str sender + 1 + str obj + str data + 1
  | Sequenced { origin; update; _ } -> tag_size origin + update_size update + 1
  | Bcast_reject { origin; reason } -> tag_size origin + str reason
  | Fetch_state { from; group } -> str from + str group
  | State_blob { group; objects; error; _ } ->
      str group + 8 + pairs_size objects
      + (match error with Some e -> str e | None -> 1)
  | Add_replica { group; holder } ->
      str group + (match holder with Some h -> str h | None -> 1)
  | Fetch_updates { from; group; _ } -> str from + str group + 8
  | Updates_blob { group; updates } ->
      str group + List.fold_left (fun acc u -> acc + update_size u) 4 updates
  | Fwd_lock { origin; group; lock; member; _ } ->
      str origin + str group + str lock + str member + 1
  | Lock_result { group; lock; member; result } ->
      str group + str lock + str member
      + (match result with
        | `Busy h -> str h
        | `Error e -> str e
        | `Granted | `Released -> 1)
  | Elect_me { from } -> str from
  | Elect_ack { from; candidate; _ } -> str from + str candidate + 1
  | Coordinator_is { coord } -> str coord
  | Dir_query { from } -> str from
  | Dir_reply { from; reports } ->
      str from + List.fold_left (fun acc r -> acc + report_size r) 4 reports

let send conn t = Net.Tcp.send conn ~size:(wire_size t) (Srv t)

(* A message whose wire size was computed once; fan-out paths (the
   coordinator's star multicast of [Sequenced] updates in particular) share
   it across all recipients instead of re-walking the message per peer. *)
type sized = { s_msg : t; s_size : int }

let pre msg = { s_msg = msg; s_size = wire_size msg }

let sized_msg s = s.s_msg

let sized_size s = s.s_size

let send_sized conn s = Net.Tcp.send conn ~size:s.s_size (Srv s.s_msg)

let send_sized_batch conns s = Net.Tcp.send_batch conns ~size:s.s_size (Srv s.s_msg)

let pp ppf = function
  | Heartbeat { from } -> Format.fprintf ppf "heartbeat from=%s" from
  | Heartbeat_ack { from } -> Format.fprintf ppf "heartbeat_ack from=%s" from
  | Fwd_create { origin; group; _ } -> Format.fprintf ppf "fwd_create %s from=%s" group origin
  | Create_result { group; error = None } -> Format.fprintf ppf "create_ok %s" group
  | Create_result { group; error = Some e } ->
      Format.fprintf ppf "create_fail %s: %s" group e
  | Fwd_delete { group; _ } -> Format.fprintf ppf "fwd_delete %s" group
  | Delete_group { group } -> Format.fprintf ppf "delete_group %s" group
  | Fwd_join { group; member; origin; _ } ->
      Format.fprintf ppf "fwd_join %s/%s from=%s" group member origin
  | Join_result { group; member; error = None; _ } ->
      Format.fprintf ppf "join_ok %s/%s" group member
  | Join_result { group; member; error = Some e; _ } ->
      Format.fprintf ppf "join_fail %s/%s: %s" group member e
  | Fwd_leave { group; member; crashed; _ } ->
      Format.fprintf ppf "fwd_leave %s/%s crashed=%b" group member crashed
  | Membership_update { group; change; _ } ->
      Format.fprintf ppf "membership_update %s %a" group Proto.Types.pp_membership_change change
  | Fwd_bcast { origin; group; sender; _ } ->
      Format.fprintf ppf "fwd_bcast %s by %s (%s#%d)" group sender origin.og_server
        origin.og_seq
  | Sequenced { update; _ } -> Format.fprintf ppf "sequenced %a" Proto.Types.pp_update update
  | Bcast_reject { reason; _ } -> Format.fprintf ppf "bcast_reject: %s" reason
  | Fetch_state { from; group } -> Format.fprintf ppf "fetch_state %s from=%s" group from
  | State_blob { group; at_seqno; error = None; _ } ->
      Format.fprintf ppf "state_blob %s at=%d" group at_seqno
  | State_blob { group; error = Some e; _ } ->
      Format.fprintf ppf "state_blob %s error=%s" group e
  | Add_replica { group; holder } ->
      Format.fprintf ppf "add_replica %s holder=%s" group
        (Option.value holder ~default:"-")
  | Fetch_updates { from; group; from_seqno } ->
      Format.fprintf ppf "fetch_updates %s from_seqno=%d for %s" group from_seqno from
  | Updates_blob { group; updates } ->
      Format.fprintf ppf "updates_blob %s (%d updates)" group (List.length updates)
  | Fwd_lock { group; lock; member; acquire; _ } ->
      Format.fprintf ppf "fwd_lock %s/%s %s acquire=%b" group lock member acquire
  | Lock_result { group; lock; member; _ } ->
      Format.fprintf ppf "lock_result %s/%s -> %s" group lock member
  | Elect_me { from } -> Format.fprintf ppf "elect_me %s" from
  | Elect_ack { from; candidate; ok } ->
      Format.fprintf ppf "elect_ack %s -> %s ok=%b" from candidate ok
  | Coordinator_is { coord } -> Format.fprintf ppf "coordinator_is %s" coord
  | Dir_query { from } -> Format.fprintf ppf "dir_query %s" from
  | Dir_reply { from; reports } ->
      Format.fprintf ppf "dir_reply %s (%d groups)" from (List.length reports)
