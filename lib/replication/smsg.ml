type server_id = string

type origin_tag = { og_server : server_id; og_seq : int }

type dir_report = {
  dr_group : Proto.Types.group_id;
  dr_persistent : bool;
  dr_next_seqno : int;
  dr_members : (Proto.Types.member * bool) list;
}

(* Cross-shard operation carried by a [Barrier_commit]: applied by every
   replica exactly when its per-shard streams reach the stamped vector. *)
type shard_op =
  | Op_view of {
      change : Proto.Types.membership_change;
      members : Proto.Types.member list;
      origin : server_id; (* replica serving the joining/leaving client *)
    }
  | Op_lock of { lock : Proto.Types.lock_id; member : Proto.Types.member_id }

let shard_op_label = function
  | Op_view { change; _ } ->
      Format.asprintf "view %a" Proto.Types.pp_membership_change change
  | Op_lock { lock; member } -> Printf.sprintf "lock %s -> %s" lock member

type t =
  | Heartbeat of { from : server_id }
  | Heartbeat_ack of { from : server_id }
  | Fwd_create of {
      origin : server_id;
      group : Proto.Types.group_id;
      creator : Proto.Types.member_id;
      persistent : bool;
      initial : (Proto.Types.object_id * string) list;
    }
  | Create_result of { group : Proto.Types.group_id; error : string option }
  | Fwd_delete of {
      origin : server_id;
      group : Proto.Types.group_id;
      requester : Proto.Types.member_id;
    }
  | Delete_group of { group : Proto.Types.group_id }
  | Fwd_join of {
      origin : server_id;
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      role : Proto.Types.role;
      notify : bool;
    }
  | Join_result of {
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      error : string option;
      next_seqno : int;
      members : Proto.Types.member list;
      holder : server_id option;
    }
  | Fwd_leave of {
      origin : server_id;
      group : Proto.Types.group_id;
      member : Proto.Types.member_id;
      crashed : bool;
    }
  | Membership_update of {
      group : Proto.Types.group_id;
      change : Proto.Types.membership_change;
      members : Proto.Types.member list;
    }
  | Fwd_bcast of {
      origin : origin_tag;
      group : Proto.Types.group_id;
      sender : Proto.Types.member_id;
      kind : Proto.Types.update_kind;
      obj : Proto.Types.object_id;
      data : string;
      mode : Proto.Types.delivery_mode;
    }
  | Sequenced of {
      origin : origin_tag;
      update : Proto.Types.update;
      mode : Proto.Types.delivery_mode;
    }
  | Bcast_reject of { origin : origin_tag; reason : string }
  | Fetch_state of { from : server_id; group : Proto.Types.group_id }
  | State_blob of {
      group : Proto.Types.group_id;
      at_seqno : int;
      objects : (Proto.Types.object_id * string) list;
      error : string option;
      shards : (int * int) list;
          (* per-shard (shard, next) positions of the snapshot; [] for the
             classic single-stream groups, so their frames keep their size *)
    }
  | Add_replica of { group : Proto.Types.group_id; holder : server_id option }
  | Fetch_updates of {
      from : server_id;
      group : Proto.Types.group_id;
      from_seqno : int;
    }
  | Updates_blob of {
      group : Proto.Types.group_id;
      updates : Proto.Types.update list;
    }
  | Fwd_lock of {
      origin : server_id;
      group : Proto.Types.group_id;
      lock : Proto.Types.lock_id;
      member : Proto.Types.member_id;
      acquire : bool;
    }
  | Lock_result of {
      group : Proto.Types.group_id;
      lock : Proto.Types.lock_id;
      member : Proto.Types.member_id;
      result :
        [ `Granted | `Busy of Proto.Types.member_id | `Released | `Error of string ];
    }
  | Elect_me of { from : server_id }
  | Elect_ack of { from : server_id; candidate : server_id; ok : bool }
  | Coordinator_is of { coord : server_id }
  | Dir_query of { from : server_id }
  | Dir_reply of { from : server_id; reports : dir_report list }
  (* sharded sequencing: each shard owns a slice of the (group, object-id)
     keyspace with its own seqno stream; the shard's owner sequences and fans
     to every server, not through the coordinator *)
  | Fwd_bcast_s of {
      origin : origin_tag;
      epoch : int;
      shard : int;
      group : Proto.Types.group_id;
      sender : Proto.Types.member_id;
      kind : Proto.Types.update_kind;
      obj : Proto.Types.object_id;
      data : string;
      mode : Proto.Types.delivery_mode;
    }
  | Sequenced_s of {
      epoch : int;
      shard : int;
      origin : origin_tag;
      update : Proto.Types.update;
      mode : Proto.Types.delivery_mode;
    }
  (* cross-shard barrier: coordinator freezes each shard owner, collects a
     vector of per-shard positions, then fans the stamped op to everyone *)
  | Barrier_prepare of { bar : int; epoch : int; group : Proto.Types.group_id }
  | Barrier_pos of {
      from : server_id;
      bar : int;
      group : Proto.Types.group_id;
      positions : (int * int) list; (* (shard, next) for shards [from] owns *)
    }
  | Barrier_commit of {
      bar : int;
      epoch : int;
      group : Proto.Types.group_id;
      vector : int array;
      op : shard_op;
    }
  (* shard ownership recovery: coordinator queries positions after a
     sequencer death (or its own takeover) and fans the new owner table *)
  | Shard_query of { from : server_id }
  | Shard_report of {
      from : server_id;
      entries : (Proto.Types.group_id * (int * int) list) list;
    }
  | Shard_assign of {
      epoch : int;
      owners : server_id array; (* owners.(s) sequences shard s *)
      positions : (Proto.Types.group_id * int * int * server_id) list;
          (* (group, shard, next, freshest holder) — seeds new allocators *)
    }
  (* per-shard gap repair, answered from the owner's retained shard log *)
  | Fetch_shard of {
      from : server_id;
      group : Proto.Types.group_id;
      shard : int;
      from_seqno : int;
    }
  | Shard_updates of {
      group : Proto.Types.group_id;
      shard : int;
      updates : Proto.Types.update list;
    }

type Net.Payload.t += Srv of t

let header = 8

let str s = 4 + String.length s

let pairs_size ps =
  List.fold_left (fun acc (k, v) -> acc + str k + str v) 4 ps

let members_size ms =
  List.fold_left (fun acc (m : Proto.Types.member) -> acc + str m.member + 1) 4 ms

let update_size (u : Proto.Types.update) =
  8 + str u.group + 1 + str u.obj + str u.data + str u.sender + 8

let tag_size tag = str tag.og_server + 8

let report_size r =
  str r.dr_group + 1 + 8
  + List.fold_left (fun acc (m, _) -> acc + str m.Proto.Types.member + 2) 4 r.dr_members

(* (shard, next) pair lists: 4-byte count + two 4-byte ints per entry. *)
let pos_pairs_size ps = List.fold_left (fun acc _ -> acc + 8) 4 ps

let shard_op_size = function
  | Op_view { change; members; origin } ->
      1
      + str
          (match change with
          | Proto.Types.Member_joined m
          | Proto.Types.Member_left m
          | Proto.Types.Member_crashed m ->
              m)
      + members_size members + str origin
  | Op_lock { lock; member } -> str lock + str member

let wire_size t =
  header
  +
  match t with
  | Heartbeat { from } | Heartbeat_ack { from } -> str from
  | Fwd_create { origin; group; creator; initial; _ } ->
      str origin + str group + str creator + 1 + pairs_size initial
  | Create_result { group; error } ->
      str group + (match error with Some e -> str e | None -> 1)
  | Fwd_delete { origin; group; requester } -> str origin + str group + str requester
  | Delete_group { group } -> str group
  | Fwd_join { origin; group; member; _ } -> str origin + str group + str member + 2
  | Join_result { group; member; error; members; holder; _ } ->
      str group + str member + 8 + members_size members
      + (match error with Some e -> str e | None -> 1)
      + (match holder with Some h -> str h | None -> 1)
  | Fwd_leave { origin; group; member; _ } -> str origin + str group + str member + 1
  | Membership_update { group; members; _ } -> str group + 8 + members_size members
  | Fwd_bcast { origin; group; sender; obj; data; _ } ->
      tag_size origin + str group + str sender + 1 + str obj + str data + 1
  | Sequenced { origin; update; _ } -> tag_size origin + update_size update + 1
  | Bcast_reject { origin; reason } -> tag_size origin + str reason
  | Fetch_state { from; group } -> str from + str group
  | State_blob { group; objects; error; shards; _ } ->
      str group + 8 + pairs_size objects
      + (match error with Some e -> str e | None -> 1)
      + (match shards with [] -> 0 | l -> pos_pairs_size l)
  | Add_replica { group; holder } ->
      str group + (match holder with Some h -> str h | None -> 1)
  | Fetch_updates { from; group; _ } -> str from + str group + 8
  | Updates_blob { group; updates } ->
      str group + List.fold_left (fun acc u -> acc + update_size u) 4 updates
  | Fwd_lock { origin; group; lock; member; _ } ->
      str origin + str group + str lock + str member + 1
  | Lock_result { group; lock; member; result } ->
      str group + str lock + str member
      + (match result with
        | `Busy h -> str h
        | `Error e -> str e
        | `Granted | `Released -> 1)
  | Elect_me { from } -> str from
  | Elect_ack { from; candidate; _ } -> str from + str candidate + 1
  | Coordinator_is { coord } -> str coord
  | Dir_query { from } -> str from
  | Dir_reply { from; reports } ->
      str from + List.fold_left (fun acc r -> acc + report_size r) 4 reports
  | Fwd_bcast_s { origin; group; sender; obj; data; _ } ->
      tag_size origin + 8 + 4 + str group + str sender + 1 + str obj + str data + 1
  | Sequenced_s { origin; update; _ } ->
      8 + 4 + tag_size origin + update_size update + 1
  | Barrier_prepare { group; _ } -> 8 + 8 + str group
  | Barrier_pos { from; group; positions; _ } ->
      str from + 8 + str group + pos_pairs_size positions
  | Barrier_commit { group; vector; op; _ } ->
      8 + 8 + str group + 4 + (8 * Array.length vector) + shard_op_size op
  | Shard_query { from } -> str from
  | Shard_report { from; entries } ->
      str from
      + List.fold_left
          (fun acc (g, ps) -> acc + str g + pos_pairs_size ps)
          4 entries
  | Shard_assign { owners; positions; _ } ->
      8
      + Array.fold_left (fun acc o -> acc + str o) 4 owners
      + List.fold_left
          (fun acc (g, _, _, h) -> acc + str g + 4 + 8 + str h)
          4 positions
  | Fetch_shard { from; group; _ } -> str from + str group + 4 + 8
  | Shard_updates { group; updates; _ } ->
      str group + 4
      + List.fold_left (fun acc u -> acc + update_size u) 4 updates

let send conn t = Net.Tcp.send conn ~size:(wire_size t) (Srv t)

(* A message whose wire size was computed once; fan-out paths (the
   coordinator's star multicast of [Sequenced] updates in particular) share
   it across all recipients instead of re-walking the message per peer. *)
type sized = { s_msg : t; s_size : int }

let pre msg = { s_msg = msg; s_size = wire_size msg }

let sized_msg s = s.s_msg

let sized_size s = s.s_size

let send_sized conn s = Net.Tcp.send conn ~size:s.s_size (Srv s.s_msg)

let send_sized_batch conns s = Net.Tcp.send_batch conns ~size:s.s_size (Srv s.s_msg)

let pp ppf = function
  | Heartbeat { from } -> Format.fprintf ppf "heartbeat from=%s" from
  | Heartbeat_ack { from } -> Format.fprintf ppf "heartbeat_ack from=%s" from
  | Fwd_create { origin; group; _ } -> Format.fprintf ppf "fwd_create %s from=%s" group origin
  | Create_result { group; error = None } -> Format.fprintf ppf "create_ok %s" group
  | Create_result { group; error = Some e } ->
      Format.fprintf ppf "create_fail %s: %s" group e
  | Fwd_delete { group; _ } -> Format.fprintf ppf "fwd_delete %s" group
  | Delete_group { group } -> Format.fprintf ppf "delete_group %s" group
  | Fwd_join { group; member; origin; _ } ->
      Format.fprintf ppf "fwd_join %s/%s from=%s" group member origin
  | Join_result { group; member; error = None; _ } ->
      Format.fprintf ppf "join_ok %s/%s" group member
  | Join_result { group; member; error = Some e; _ } ->
      Format.fprintf ppf "join_fail %s/%s: %s" group member e
  | Fwd_leave { group; member; crashed; _ } ->
      Format.fprintf ppf "fwd_leave %s/%s crashed=%b" group member crashed
  | Membership_update { group; change; _ } ->
      Format.fprintf ppf "membership_update %s %a" group Proto.Types.pp_membership_change change
  | Fwd_bcast { origin; group; sender; _ } ->
      Format.fprintf ppf "fwd_bcast %s by %s (%s#%d)" group sender origin.og_server
        origin.og_seq
  | Sequenced { update; _ } -> Format.fprintf ppf "sequenced %a" Proto.Types.pp_update update
  | Bcast_reject { reason; _ } -> Format.fprintf ppf "bcast_reject: %s" reason
  | Fetch_state { from; group } -> Format.fprintf ppf "fetch_state %s from=%s" group from
  | State_blob { group; at_seqno; error = None; _ } ->
      Format.fprintf ppf "state_blob %s at=%d" group at_seqno
  | State_blob { group; error = Some e; _ } ->
      Format.fprintf ppf "state_blob %s error=%s" group e
  | Add_replica { group; holder } ->
      Format.fprintf ppf "add_replica %s holder=%s" group
        (Option.value holder ~default:"-")
  | Fetch_updates { from; group; from_seqno } ->
      Format.fprintf ppf "fetch_updates %s from_seqno=%d for %s" group from_seqno from
  | Updates_blob { group; updates } ->
      Format.fprintf ppf "updates_blob %s (%d updates)" group (List.length updates)
  | Fwd_lock { group; lock; member; acquire; _ } ->
      Format.fprintf ppf "fwd_lock %s/%s %s acquire=%b" group lock member acquire
  | Lock_result { group; lock; member; _ } ->
      Format.fprintf ppf "lock_result %s/%s -> %s" group lock member
  | Elect_me { from } -> Format.fprintf ppf "elect_me %s" from
  | Elect_ack { from; candidate; ok } ->
      Format.fprintf ppf "elect_ack %s -> %s ok=%b" from candidate ok
  | Coordinator_is { coord } -> Format.fprintf ppf "coordinator_is %s" coord
  | Dir_query { from } -> Format.fprintf ppf "dir_query %s" from
  | Dir_reply { from; reports } ->
      Format.fprintf ppf "dir_reply %s (%d groups)" from (List.length reports)
  | Fwd_bcast_s { origin; shard; group; sender; _ } ->
      Format.fprintf ppf "fwd_bcast_s %s[%d] by %s (%s#%d)" group shard sender
        origin.og_server origin.og_seq
  | Sequenced_s { shard; update; _ } ->
      Format.fprintf ppf "sequenced_s [%d] %a" shard Proto.Types.pp_update update
  | Barrier_prepare { bar; group; _ } ->
      Format.fprintf ppf "barrier_prepare b%d %s" bar group
  | Barrier_pos { from; bar; group; positions } ->
      Format.fprintf ppf "barrier_pos b%d %s from=%s (%d shards)" bar group from
        (List.length positions)
  | Barrier_commit { bar; group; op; _ } ->
      Format.fprintf ppf "barrier_commit b%d %s %s" bar group (shard_op_label op)
  | Shard_query { from } -> Format.fprintf ppf "shard_query %s" from
  | Shard_report { from; entries } ->
      Format.fprintf ppf "shard_report %s (%d groups)" from (List.length entries)
  | Shard_assign { epoch; owners; positions } ->
      Format.fprintf ppf "shard_assign e%d [%s] (%d positions)" epoch
        (String.concat ";" (Array.to_list owners))
        (List.length positions)
  | Fetch_shard { from; group; shard; from_seqno } ->
      Format.fprintf ppf "fetch_shard %s[%d] from_seqno=%d for %s" group shard
        from_seqno from
  | Shard_updates { group; shard; updates } ->
      Format.fprintf ppf "shard_updates %s[%d] (%d updates)" group shard
        (List.length updates)
