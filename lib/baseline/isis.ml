module T = Proto.Types

type config = { port : int; view_ack_delay : float; donor_timeout : float }

let default_config = { port = 7500; view_ack_delay = 0.0; donor_timeout = 3.0 }

type wire =
  | Join_req of { joiner : string }
  | View_propose of { view : int; members : string list; joiner : string }
  | View_ack of { view : int; from : string }
  | View_install of { view : int; members : string list }
  | State_donate of {
      view : int;
      members : string list;
      objects : (T.object_id * string) list;
    }
  | Data of { from : string; vclock : (string * int) list; update : T.update }

type Net.Payload.t += Isis of wire

let wire_size = function
  | Join_req { joiner } -> 16 + String.length joiner
  | View_propose { members; joiner; _ } ->
      24 + String.length joiner
      + List.fold_left (fun a m -> a + 4 + String.length m) 0 members
  | View_ack { from; _ } -> 16 + String.length from
  | View_install { members; _ } ->
      16 + List.fold_left (fun a m -> a + 4 + String.length m) 0 members
  | State_donate { members; objects; _ } ->
      24
      + List.fold_left (fun a m -> a + 4 + String.length m) 0 members
      + List.fold_left
          (fun a (k, v) -> a + 8 + String.length k + String.length v)
          0 objects
  | Data { from; vclock; update } ->
      16 + String.length from
      + (16 * List.length vclock)
      + String.length update.T.obj + String.length update.T.data
      + String.length update.T.sender + 24

let send_wire conn w = Net.Tcp.send conn ~size:(wire_size w) (Isis w)

type pending_sponsor = {
  ps_joiner : string;
  ps_conn : Net.Tcp.conn;
  ps_view : int;
  mutable ps_waiting : string list; (* members whose ack is outstanding *)
}

type t = {
  fabric : Net.Fabric.t;
  host : Net.Host.t;
  cfg : config;
  group : T.group_id;
  mutable view : int;
  mutable view_members : string list; (* join order *)
  causal : T.update Ordering.Causal.t;
  state : Corona.Shared_state.t;
  conns : (string, Net.Tcp.conn) Hashtbl.t;
  mutable on_deliver : T.update -> unit;
  mutable ack_delay : float;
  mutable sponsor_queue : pending_sponsor list; (* head is active *)
  outbox : (string, wire list) Hashtbl.t; (* queued for members not yet meshed *)
  mutable delivered : int;
}

let member_id t = Net.Host.name t.host

let members t = List.sort String.compare t.view_members

let view_number t = t.view

let state t = t.state

let set_on_deliver t f = t.on_deliver <- f

let set_view_ack_delay t d = t.ack_delay <- d

let deliveries t = t.delivered

let engine t = Net.Fabric.engine t.fabric

let peer_conns t =
  Hashtbl.fold
    (fun name conn acc ->
      if Net.Tcp.is_open conn then (name, conn) :: acc else acc)
    t.conns []

(* Send to every other view member; a member whose mesh connection is not
   up yet (joins complete before the full mesh does) gets the message queued
   and flushed when the connection registers. *)
let send_to_view t msg =
  List.iter
    (fun m ->
      if m <> member_id t then
        match Hashtbl.find_opt t.conns m with
        | Some conn when Net.Tcp.is_open conn -> send_wire conn msg
        | Some _ | None ->
            let q = Option.value (Hashtbl.find_opt t.outbox m) ~default:[] in
            Hashtbl.replace t.outbox m (msg :: q))
    t.view_members

let cbcast t ~kind ~obj ~data =
  let vclock = Ordering.Causal.stamp_send t.causal in
  let u =
    {
      T.seqno = Ordering.Vclock.get vclock (member_id t);
      group = t.group;
      kind;
      obj;
      data;
      sender = member_id t;
      timestamp = Sim.Engine.now (engine t);
    }
  in
  Corona.Shared_state.apply t.state u;
  t.delivered <- t.delivered + 1;
  let msg = Data { from = member_id t; vclock = Ordering.Vclock.to_list vclock; update = u } in
  send_to_view t msg

(* --- view agreement (sponsor side) ----------------------------------- *)

let rec start_next_sponsor_round t =
  match t.sponsor_queue with
  | [] -> ()
  | ps :: _ ->
      (* Flush-round participants: ourselves plus every member we can still
         reach. A stale entry from an aborted earlier join (its donor died
         mid-transfer) has no connection and would hang the round forever. *)
      let reachable =
        List.filter
          (fun m ->
            m <> ps.ps_joiner
            && (m = member_id t
               ||
               match Hashtbl.find_opt t.conns m with
               | Some conn -> Net.Tcp.is_open conn
               | None -> false))
          t.view_members
      in
      t.view_members <- reachable;
      ps.ps_waiting <- reachable;
      let propose =
        View_propose { view = ps.ps_view; members = reachable; joiner = ps.ps_joiner }
      in
      List.iter
        (fun m ->
          if m <> member_id t then
            match Hashtbl.find_opt t.conns m with
            | Some conn -> send_wire conn propose
            | None -> ())
        reachable;
      (* Our own ack, after our own (possibly artificial) flush delay. *)
      ignore
        (Sim.Engine.schedule (engine t) ~delay:t.ack_delay (fun () ->
             sponsor_ack t ps.ps_view (member_id t)))

and sponsor_ack t view from =
  match t.sponsor_queue with
  | ps :: rest when ps.ps_view = view ->
      ps.ps_waiting <- List.filter (fun m -> m <> from) ps.ps_waiting;
      if ps.ps_waiting = [] then begin
        (* All members flushed: install the view and donate the state. A
           re-joining member keeps a single entry. *)
        let new_members =
          List.filter (fun m -> m <> ps.ps_joiner) t.view_members @ [ ps.ps_joiner ]
        in
        t.view <- ps.ps_view;
        t.view_members <- new_members;
        let install = View_install { view = ps.ps_view; members = new_members } in
        List.iter (fun (_, conn) -> send_wire conn install) (peer_conns t);
        if Net.Tcp.is_open ps.ps_conn then
          send_wire ps.ps_conn
            (State_donate
               {
                 view = ps.ps_view;
                 members = new_members;
                 objects = Corona.Shared_state.objects t.state;
               });
        t.sponsor_queue <- rest;
        start_next_sponsor_round t
      end
  | _ -> ()

(* --- message handling -------------------------------------------------- *)

let handle t from_conn msg =
  match msg with
  | Join_req { joiner } ->
      let ps =
        {
          ps_joiner = joiner;
          ps_conn = from_conn;
          ps_view = t.view + 1 + List.length t.sponsor_queue;
          ps_waiting = [];
        }
      in
      let idle = t.sponsor_queue = [] in
      t.sponsor_queue <- t.sponsor_queue @ [ ps ];
      if idle then start_next_sponsor_round t
  | View_propose { view; joiner = _; members = _ } ->
      (* Flush, then ack to the sponsor (the connection the proposal came
         from). *)
      ignore
        (Sim.Engine.schedule (engine t) ~delay:t.ack_delay (fun () ->
             if Net.Tcp.is_open from_conn then
               send_wire from_conn (View_ack { view; from = member_id t })))
  | View_ack { view; from } -> sponsor_ack t view from
  | View_install { view; members } ->
      if view > t.view then begin
        t.view <- view;
        t.view_members <- members
      end
  | State_donate _ -> () (* only joiners receive these, handled separately *)
  | Data { from; vclock; update } ->
      let deliverable =
        Ordering.Causal.receive t.causal ~from (Ordering.Vclock.of_list vclock) update
      in
      List.iter
        (fun u ->
          Corona.Shared_state.apply t.state u;
          t.delivered <- t.delivered + 1;
          t.on_deliver u)
        deliverable

let wire_receiver t conn =
  Net.Tcp.set_receiver conn (fun ~size:_ payload ->
      match payload with Isis msg -> handle t conn msg | _ -> ())

let register_conn t name conn =
  Hashtbl.replace t.conns name conn;
  (match Hashtbl.find_opt t.outbox name with
  | Some queued ->
      Hashtbl.remove t.outbox name;
      List.iter (send_wire conn) (List.rev queued)
  | None -> ());
  Net.Tcp.set_on_close conn (fun _reason ->
      (* Local view update on member failure; full view agreement on
         failure is out of scope for the baseline. *)
      Hashtbl.remove t.conns name;
      t.view_members <- List.filter (fun m -> m <> name) t.view_members);
  wire_receiver t conn

let make_member fabric host cfg ~group ~initial =
  let t =
    {
      fabric;
      host;
      cfg;
      group;
      view = 0;
      view_members = [ Net.Host.name host ];
      causal = Ordering.Causal.create ~site:(Net.Host.name host);
      state = Corona.Shared_state.of_objects initial;
      conns = Hashtbl.create 8;
      on_deliver = ignore;
      ack_delay = cfg.view_ack_delay;
      sponsor_queue = [];
      outbox = Hashtbl.create 4;
      delivered = 0;
    }
  in
  ignore
    (Net.Tcp.listen fabric host ~port:cfg.port ~on_accept:(fun conn ->
         (* Identify the peer on its first message; joins carry the name,
            mesh-extension conns greet with a Join-less Data/install, so we
            register lazily below. *)
         Net.Tcp.set_receiver conn (fun ~size:_ payload ->
             match payload with
             | Isis (Join_req { joiner }) ->
                 register_conn t joiner conn;
                 handle t conn (Join_req { joiner })
             | Isis (Data { from; _ } as msg) ->
                 if not (Hashtbl.mem t.conns from) then register_conn t from conn;
                 handle t conn msg
             | Isis msg -> handle t conn msg
             | _ -> ())));
  t

let found_group fabric host ?(config = default_config) ~group ~initial () =
  make_member fabric host config ~group ~initial

let join fabric host ?(config = default_config) ~group ~contacts ~on_joined
    ~on_failed () =
  let joiner = Net.Host.name host in
  let rec try_contact = function
    | [] -> on_failed "all contacts exhausted"
    | contact :: rest ->
        let settled = ref false in
        Net.Tcp.connect fabric ~src:host ~dst:contact ~port:config.port
          ~on_connected:(fun conn ->
            send_wire conn (Join_req { joiner });
            (* The paper's point: a dead donor costs a detection timeout
               before the joiner can retry elsewhere. *)
            ignore
              (Sim.Engine.schedule (Net.Fabric.engine fabric)
                 ~delay:config.donor_timeout (fun () ->
                   if not !settled then begin
                     settled := true;
                     if Net.Tcp.is_open conn then Net.Tcp.close conn;
                     try_contact rest
                   end));
            Net.Tcp.set_receiver conn (fun ~size:_ payload ->
                match payload with
                | Isis (State_donate { view; members; objects }) when not !settled ->
                    settled := true;
                    let t = make_member fabric host config ~group ~initial:objects in
                    t.view <- view;
                    t.view_members <- members;
                    register_conn t (Net.Host.name contact) conn;
                    (* Complete the mesh towards the other members. *)
                    List.iter
                      (fun m ->
                        if m <> joiner && m <> Net.Host.name contact then
                          Net.Tcp.connect fabric ~src:host
                            ~dst:(Net.Fabric.host fabric m) ~port:config.port
                            ~on_connected:(fun c ->
                              register_conn t m c;
                              (* Greet so the peer can map the conn. *)
                              send_wire c
                                (Data
                                   {
                                     from = joiner;
                                     vclock = [];
                                     update =
                                       {
                                         T.seqno = 0;
                                         group;
                                         kind = T.Append_update;
                                         obj = "";
                                         data = "";
                                         sender = joiner;
                                         timestamp = 0.0;
                                       };
                                   }))
                            ~on_failed:(fun () -> ())
                            ())
                      members;
                    on_joined t
                | Isis _ | _ -> ()))
          ~on_failed:(fun () ->
            if not !settled then begin
              settled := true;
              try_contact rest
            end)
          ()
  in
  try_contact contacts
