(** Fault-schedule minimization. Given a failing schedule and a predicate
    that re-runs it, shrink to a schedule that still fails but carries as
    few events, and as small parameters, as we can manage: ddmin over the
    event list, a one-event-at-a-time removal pass, then parameter halving
    (durations, burst sizes and counts). Every candidate re-executes the
    schedule, so the whole search is bounded by [max_attempts] runs. *)

type stats = { sh_attempts : int; sh_kept : int; sh_dropped : int }

val shrink :
  ?max_attempts:int ->
  still_fails:(Schedule.t -> bool) ->
  Schedule.t ->
  Schedule.t * stats
(** [still_fails] must re-run the candidate and report whether the
    original failure persists ([max_attempts] defaults to 220). *)
