(** The invariant oracles. Each takes the post-quiescence evidence —
    client observation logs, server state copies, lock journals — and
    returns violations; an empty list means the run upheld the protocol
    contract. *)

type violation = { v_oracle : string; v_detail : string }

val violation_line : violation -> string

type input = {
  i_copies : (string * Deploy.copy list) list;  (** per group, live copies *)
  i_journals : (string * string * Corona.Locks.event list) list;
      (** (owner, group, events) — one journal per server incarnation *)
  i_clients : Observe.t list;
  i_client_states : (string * string * string) list;
      (** (agent, group, digest) for agents joined & connected at the end *)
  i_members : (string * string list) list;  (** per group, the servers' view *)
  i_expected_members : (string * string list) list;
      (** per group, agents that believe they are joined at the end *)
  i_eras : float list;  (** single-server restart times, oldest first *)
  i_barriers : (string * Proto.Message.barrier_frame list) list;
      (** per coordinating node, its cross-shard barrier journal (oldest
          first); [] unsharded *)
  i_shards : int;  (** deployment shard count; 1 = classic sequencing *)
  i_relay : bool;
      (** relay-fronted deployment: delivery completeness applies *)
}

val total_order : input -> violation list
(** Within each (re)join segment a client observes a contiguous, strictly
    increasing run of sequence numbers, and any two clients that observe
    the same (era, seqno) of a group observe the same update. *)

val convergence : input -> violation list
(** Every live copy of a group reports the same digest, and the server
    copies agree on the next sequence number. *)

val membership : input -> violation list
(** No member appears twice in a view, a join view contains the joiner, a
    leave/crash view omits the departed, and at quiescence the servers'
    member list matches the agents that believe they are joined. *)

val locks : input -> violation list
(** Mutual exclusion and release pairing over the lock journals. *)

val fidelity : input -> violation list
(** Retained logs replay to the digests the copies report. *)

val cross_shard : input -> violation list
(** Sharded runs: barrier stamps are consistent across coordinators and
    every client applied barrier ops at the stamped vector. *)

val completeness : input -> violation list
(** Relay-fronted runs: every member still in a group at quiescence
    observed the root's full stream (a stalled failover cannot hide). *)

val check : input -> violation list
(** All of the above, concatenated in a fixed order. *)
