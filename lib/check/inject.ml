(* The single source of truth for corona-check's deliberate bug injections.
   The [--inject] help text and the argument parser are both generated from
   [specs], and a unit test diffs the binary's help against this registry —
   so a new injection cannot be added without its documentation, and the
   documentation cannot drift from what the parser accepts. *)

type t = {
  skip_reconcile : bool;
      (* drop the post-heal reconciliation step after a partition *)
  skip_rejoin : bool;
      (* reconnecting clients "forget" to rejoin groups they were in *)
  skip_barrier : bool;
      (* sharded deployments: membership views fan directly instead of
         riding the cross-shard barrier (lock grants stay barriered) *)
  relay_crash : bool;
      (* HAZARD, not a bug: relay deployments force a deterministic mid-run
         relay crash on top of whatever the schedule drew — the system must
         fail members over to a sibling relay and still satisfy every
         oracle *)
  skip_failover : bool;
      (* relay deployments: members whose relay died "forget" to reconnect
         to the sibling, stalling their streams — the delivery-completeness
         oracle must catch this *)
}

let none =
  {
    skip_reconcile = false;
    skip_rejoin = false;
    skip_barrier = false;
    relay_crash = false;
    skip_failover = false;
  }

type spec = { sp_name : string; sp_doc : string; sp_set : t -> t }

let specs =
  [
    {
      sp_name = "skip-reconcile";
      sp_doc = "drop partition reconciliation after a heal";
      sp_set = (fun b -> { b with skip_reconcile = true });
    };
    {
      sp_name = "skip-rejoin";
      sp_doc = "reconnecting clients keep stale replicas instead of rejoining";
      sp_set = (fun b -> { b with skip_rejoin = true });
    };
    {
      sp_name = "skip-barrier";
      sp_doc = "sharded views bypass the cross-shard barrier stamp";
      sp_set = (fun b -> { b with skip_barrier = true });
    };
    {
      sp_name = "relay-crash";
      sp_doc = "hazard: force a mid-run relay crash (system must fail over)";
      sp_set = (fun b -> { b with relay_crash = true });
    };
    {
      sp_name = "skip-failover";
      sp_doc = "members of a dead relay never reconnect to the sibling";
      sp_set = (fun b -> { b with skip_failover = true });
    };
  ]

let names = List.map (fun s -> s.sp_name) specs

let of_string name =
  List.find_opt (fun s -> s.sp_name = name) specs
  |> Option.map (fun s -> s.sp_set none)

(* The complete help line for [--inject], built from the registry. *)
let spec_doc () =
  Printf.sprintf "BUG  deliberately break the runner: %s"
    (String.concat " | " names)
