(* Deployment builder: turns a [Schedule.kind] into a running service and
   gives the runner one vocabulary of operations (crash / restart /
   partition / heal / reconcile) plus the state extraction the oracles need
   (per-group copies with digests and retained logs, lock journals across
   server incarnations, restart-era boundaries). *)

module Sched = Schedule

type copy = {
  c_owner : string; (* which server/incarnation holds this copy *)
  c_digest : string;
  c_next : int; (* next sequence number the copy expects; sharded copies
                   report the sum of their per-shard positions *)
  c_base : ((Proto.Types.object_id * string) list * int) option;
  c_updates : Proto.Types.update list; (* retained log from the base *)
  c_vector : int list; (* per-shard stream positions; [] unsharded *)
}

type single = {
  s_host : Net.Host.t;
  s_storage : Corona.Server_storage.t;
  s_config : Corona.Server.config;
  mutable s_server : Corona.Server.t;
  mutable s_incarnation : int;
  mutable s_retired : (string * (Proto.Types.group_id * Corona.Locks.event list) list) list;
      (* lock journals snapshotted from crashed incarnations, oldest first *)
  mutable s_restarts : float list; (* era boundaries, oldest first *)
}

type backend = B_single of single | B_repl of Replication.Cluster.t

(* A relay of the hierarchical dissemination tier (Relay kind only): the
   root stays a B_single backend, so all state extraction is untouched —
   the relays only change where clients connect and what the fan-out path
   looks like. *)
type relay_dep = {
  rd_idx : int;
  rd_host : Net.Host.t;
  mutable rd_relay : Corona.Relay.t option;
  mutable rd_alive : bool;
}

type t = {
  fabric : Net.Fabric.t;
  backend : backend;
  shards : int;
  relays : relay_dep array; (* [||] unless the kind is Relay *)
  slice_clients : int; (* client count the relay slice partition is over *)
}

let fabric t = t.fabric

let single_config ~sync_log =
  {
    Corona.Server.default_config with
    logging = (if sync_log then Corona.Server.Sync_logging else Corona.Server.Async_logging);
    record_lock_journal = true;
    (* Exercise WAL group commit under randomized fault schedules: a crash
       mid-batch must still satisfy the durability and replay oracles. *)
    wal_batching = Some Storage.Wal.default_batch;
  }

let repl_config = { Replication.Node.default_config with record_lock_journal = true }

(* [clients] sizes the relay slice partition (Relay kind only): agent [i]
   connects through relay [Membership.slice_owner ~relays ~members:clients i]. *)
let create fabric ?(sharded_direct_views = false) ?(clients = 0) (kind : Sched.kind) =
  let mk_single ~sync_log =
    let host = Net.Fabric.add_host fabric ~name:"srv-0" () in
    let storage = Corona.Server_storage.create host () in
    let config = single_config ~sync_log in
    let server = Corona.Server.create fabric host ~config ~storage () in
    {
      s_host = host;
      s_storage = storage;
      s_config = config;
      s_server = server;
      s_incarnation = 0;
      s_retired = [];
      s_restarts = [];
    }
  in
  match kind with
  | Sched.Single { sync_log } ->
      {
        fabric;
        backend = B_single (mk_single ~sync_log);
        shards = 1;
        relays = [||];
        slice_clients = clients;
      }
  | Sched.Relay { relays } ->
      let s = mk_single ~sync_log:false in
      let rds =
        Array.init relays (fun i ->
            let name = Printf.sprintf "relay-%d" i in
            let rd =
              {
                rd_idx = i;
                rd_host = Net.Fabric.add_host fabric ~name ();
                rd_relay = None;
                rd_alive = true;
              }
            in
            rd.rd_relay <-
              Some
                (Corona.Relay.create fabric rd.rd_host ~relay:name
                   ~root:s.s_host
                   ~on_ready:(fun _ -> ())
                   ~on_failed:(fun () -> ())
                   ());
            rd)
      in
      {
        fabric;
        backend = B_single s;
        shards = 1;
        relays = rds;
        slice_clients = clients;
      }
  | Sched.Replicated { replicas } ->
      let cluster =
        Replication.Cluster.create fabric ~config:repl_config ~replicas ()
      in
      {
        fabric;
        backend = B_repl cluster;
        shards = 1;
        relays = [||];
        slice_clients = clients;
      }
  | Sched.Sharded { replicas; shards } ->
      let config =
        { repl_config with Replication.Node.shards; sharded_direct_views }
      in
      let cluster = Replication.Cluster.create fabric ~config ~replicas () in
      {
        fabric;
        backend = B_repl cluster;
        shards;
        relays = [||];
        slice_clients = clients;
      }

let shards t = t.shards

let node_at cluster idx = List.nth (Replication.Cluster.nodes cluster) idx

let server_host t idx =
  match t.backend with
  | B_single s -> s.s_host
  | B_repl c -> Replication.Node.host (node_at c idx)

let relay_count t = Array.length t.relays

let relay_at t i =
  if i < 0 || i >= Array.length t.relays then None else t.relays.(i).rd_relay

let relay_alive t i =
  i >= 0 && i < Array.length t.relays
  && t.relays.(i).rd_alive
  && Net.Host.is_alive t.relays.(i).rd_host

(* The relay agent [i] should connect through right now: its slice's
   canonical owner, or — after that relay died — the next alive sibling in
   index order, wrapping. [None] when every relay is down (connect straight
   to the root, degraded but correct). *)
let owning_relay t i =
  match Array.length t.relays with
  | 0 -> None
  | n ->
      let members = max t.slice_clients (i + 1) in
      let owner = Corona.Membership.slice_owner ~relays:n ~members i in
      let rec probe k =
        if k = n then None
        else if relay_alive t ((owner + k) mod n) then
          Some t.relays.((owner + k) mod n)
        else probe (k + 1)
      in
      probe 0

(* Where agent [i] should (re)connect right now. Replicated assignments
   follow [Cluster.replica_for], so after a serving replica dies its agents
   land on a live one; relay deployments route through the slice's owning
   (or adopting) relay. *)
let client_target t i =
  match t.backend with
  | B_single s -> (
      match owning_relay t i with
      | Some rd -> rd.rd_host
      | None -> s.s_host)
  | B_repl c -> Replication.Node.host (Replication.Cluster.replica_for c i)

(* Relay deployments: kill a relay's host permanently. Its control and
   proxied connections die with it; members fail over client-side. *)
let crash_relay t idx =
  match Array.length t.relays with
  | 0 -> ()
  | n ->
      let rd = t.relays.(idx mod n) in
      if rd.rd_alive then begin
        rd.rd_alive <- false;
        Net.Host.crash rd.rd_host
      end

let snapshot_journals server label =
  List.filter_map
    (fun g ->
      match Corona.Server.lock_journal server g with
      | [] -> None
      | events -> Some (g, events))
    (Corona.Server.group_ids server)
  |> fun js -> (label, js)

let crash_server t idx =
  match t.backend with
  | B_single s ->
      let label = Printf.sprintf "srv-0#%d" s.s_incarnation in
      s.s_retired <- s.s_retired @ [ snapshot_journals s.s_server label ];
      Net.Host.crash s.s_host
  | B_repl c -> Net.Host.crash (Replication.Node.host (node_at c idx))

(* Single deployment only: bring the host back and start a fresh server
   incarnation over the same stable storage (§6 recovery). *)
let restart_server t =
  match t.backend with
  | B_repl _ -> ()
  | B_single s ->
      Net.Host.restart s.s_host;
      s.s_incarnation <- s.s_incarnation + 1;
      s.s_restarts <- s.s_restarts @ [ Sim.Engine.now (Net.Fabric.engine t.fabric) ];
      s.s_server <-
        Corona.Server.create t.fabric s.s_host ~config:s.s_config ~storage:s.s_storage ()

let restart_times t =
  match t.backend with B_single s -> s.s_restarts | B_repl _ -> []

let partition t ~isolated =
  let isolated_names =
    List.map (fun idx -> Net.Host.name (server_host t idx)) isolated
  in
  let kept =
    List.filter_map
      (fun h ->
        let n = Net.Host.name h in
        if List.mem n isolated_names then None else Some n)
      (Net.Fabric.hosts t.fabric)
  in
  Net.Fabric.partition t.fabric [ kept; isolated_names ]

let heal t = Net.Fabric.heal t.fabric

let live_nodes t =
  match t.backend with B_single _ -> [] | B_repl c -> Replication.Cluster.live_nodes c

let group_ids t =
  match t.backend with
  | B_single s ->
      if Net.Host.is_alive s.s_host then Corona.Server.group_ids s.s_server else []
  | B_repl c ->
      List.concat_map Replication.Node.groups_held (Replication.Cluster.live_nodes c)
      |> List.sort_uniq String.compare

let copies t group =
  match t.backend with
  | B_single s ->
      if not (Net.Host.is_alive s.s_host) then []
      else begin
        match
          ( Corona.Server.group_state s.s_server group,
            Corona.Server.group_next_seqno s.s_server group )
        with
        | Some state, Some next ->
            [
              {
                c_owner = Printf.sprintf "srv-0#%d" s.s_incarnation;
                c_digest = Corona.Shared_state.digest state;
                c_next = next;
                c_base = Corona.Server.group_base s.s_server group;
                c_updates =
                  (match Corona.Server.group_base s.s_server group with
                  | Some (_, base_seqno) ->
                      Corona.Server.group_updates_from s.s_server group base_seqno
                  | None -> []);
                c_vector = [];
              };
            ]
        | _ -> []
      end
  | B_repl c when t.shards > 1 ->
      (* sharded copies: digest the merged object view, expose the per-shard
         position vector for the cross-shard oracle *)
      List.filter_map
        (fun node ->
          match
            ( Replication.Node.group_shard_objects node group,
              Replication.Node.group_shard_vector node group )
          with
          | Some objects, Some vec ->
              Some
                {
                  c_owner = Replication.Node.id node;
                  c_digest =
                    Corona.Shared_state.digest (Corona.Shared_state.of_objects objects);
                  c_next = Array.fold_left ( + ) 0 vec;
                  c_base = None;
                  c_updates = [];
                  c_vector = Array.to_list vec;
                }
          | _ -> None)
        (Replication.Cluster.live_nodes c)
  | B_repl c ->
      List.filter_map
        (fun node ->
          match
            ( Replication.Node.group_state node group,
              Replication.Node.group_next_seqno node group )
          with
          | Some state, Some next ->
              Some
                {
                  c_owner = Replication.Node.id node;
                  c_digest = Corona.Shared_state.digest state;
                  c_next = next;
                  c_base = Replication.Node.group_base node group;
                  c_updates =
                    (match Replication.Node.group_base node group with
                    | Some (_, base_seqno) ->
                        Replication.Node.group_updates_from node group base_seqno
                    | None -> []);
                  c_vector = [];
                }
          | _ -> None)
        (Replication.Cluster.live_nodes c)

(* The servers' view of a group's membership (replicated: union of the
   members each live node serves). *)
let members t group =
  match t.backend with
  | B_single s ->
      if not (Net.Host.is_alive s.s_host) then []
      else
        List.map
          (fun (m : Proto.Types.member) -> m.member)
          (Corona.Server.group_members s.s_server group)
  | B_repl c ->
      List.concat_map
        (fun node ->
          List.map
            (fun (m : Proto.Types.member) -> m.member)
            (Replication.Node.group_local_members node group))
        (Replication.Cluster.live_nodes c)
      |> List.sort_uniq String.compare

let lock_journals t =
  match t.backend with
  | B_single s ->
      let live =
        if Net.Host.is_alive s.s_host then
          [ snapshot_journals s.s_server (Printf.sprintf "srv-0#%d" s.s_incarnation) ]
        else []
      in
      List.concat_map
        (fun (owner, js) -> List.map (fun (g, evs) -> (owner, g, evs)) js)
        (s.s_retired @ live)
  | B_repl c ->
      List.concat_map
        (fun node ->
          List.map
            (fun (g, evs) -> (Replication.Node.id node, g, evs))
            (Replication.Node.lock_journal node))
        (Replication.Cluster.live_nodes c)

(* Decoded cross-shard barrier journals of every live node that ever
   coordinated barriers (owner label, frames oldest first). *)
let barrier_frames t =
  match t.backend with
  | B_single _ -> []
  | B_repl c ->
      List.filter_map
        (fun node ->
          match Replication.Node.barrier_journal node with
          | [] -> None
          | frames ->
              Some
                ( Replication.Node.id node,
                  List.map Proto.Message.decode_barrier_frame frames ))
        (Replication.Cluster.live_nodes c)

(* After a heal: compare every group's live copies; when two disagree, run
   the §4.2 reconciliation adopting the freshest side, otherwise just
   re-unify the cluster under the earliest live server. *)
let reconcile_after_heal t =
  match t.backend with
  | B_single _ -> ()
  | B_repl c when t.shards > 1 ->
      (* sharded copies have no retained per-group log to merge: adopt the
         freshest merged view (largest position sum) on every stale node,
         then re-unify under one coordinator so shard recovery re-runs *)
      let live = Replication.Cluster.live_nodes c in
      List.iter
        (fun group ->
          let holders =
            List.filter_map
              (fun n ->
                match
                  ( Replication.Node.group_shard_objects n group,
                    Replication.Node.group_shard_vector n group )
                with
                | Some objects, Some vec -> Some (n, objects, vec)
                | _ -> None)
              live
          in
          match holders with
          | [] | [ _ ] -> ()
          | holders ->
              let sum = Array.fold_left ( + ) 0 in
              let _, best_objects, best_vec =
                List.fold_left
                  (fun (bn, bo, bv) (n, o, v) ->
                    if sum v > sum bv then (n, o, v) else (bn, bo, bv))
                  (List.hd holders) (List.tl holders)
              in
              let positions =
                Array.to_list (Array.mapi (fun s p -> (s, p)) best_vec)
              in
              List.iter
                (fun (n, objects, vec) ->
                  if vec <> best_vec || objects <> best_objects then
                    Replication.Node.adopt_group_state_sharded n group
                      ~objects:best_objects ~positions)
                holders)
        (group_ids t);
      (match live with
      | [] -> ()
      | first :: _ ->
          let coord = Replication.Node.id first in
          List.iter (fun n -> Replication.Node.admin_heal n ~coordinator:coord) live)
  | B_repl c ->
      let live = Replication.Cluster.live_nodes c in
      let reconciled = ref false in
      List.iter
        (fun group ->
          let holders =
            List.filter_map
              (fun n ->
                match
                  ( Replication.Node.group_next_seqno n group,
                    Replication.Node.group_state n group )
                with
                | Some next, Some state ->
                    Some (n, next, Corona.Shared_state.digest state)
                | _ -> None)
              live
          in
          match holders with
          | [] | [ _ ] -> ()
          | holders -> (
              let (best, best_next, best_digest) =
                List.fold_left
                  (fun (bn, bx, bd) (n, next, d) ->
                    if next > bx then (n, next, d) else (bn, bx, bd))
                  (List.hd holders) (List.tl holders)
              in
              match
                List.find_opt
                  (fun (n, next, d) ->
                    Replication.Node.id n <> Replication.Node.id best
                    && (next <> best_next || d <> best_digest))
                  holders
              with
              | None -> ()
              | Some (other, _, _) ->
                  reconciled := true;
                  ignore
                    (Replication.Cluster.reconcile c ~group ~side_a:best ~side_b:other
                       ~resolution:Replication.Reconcile.Adopt_a)))
        (group_ids t);
      if not !reconciled then begin
        match live with
        | [] -> ()
        | first :: _ ->
            let coord = Replication.Node.id first in
            List.iter (fun n -> Replication.Node.admin_heal n ~coordinator:coord) live
      end
