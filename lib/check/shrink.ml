(* Fault-schedule minimization. Given a failing schedule and a predicate
   that re-runs it, shrink to a schedule that still fails but carries as
   few events, and as small parameters, as we can manage:

   1. ddmin over the event list — binary-search-flavoured chunk removal
      with granularity doubling;
   2. a one-event-at-a-time removal pass (1-minimality);
   3. parameter halving — durations, burst sizes and counts are halved
      while the failure persists.

   Every candidate re-executes the schedule, so the whole search is bounded
   by [max_attempts] runs. *)

type stats = { sh_attempts : int; sh_kept : int; sh_dropped : int }

let with_events (s : Schedule.t) events = { s with Schedule.events }

(* indexes [0, len) minus the chunk [i*size, (i+1)*size) *)
let complement events ~chunk ~size =
  List.filteri (fun i _ -> i < chunk * size || i >= (chunk + 1) * size) events

let ddmin ~check (s : Schedule.t) =
  let rec go events n =
    let len = List.length events in
    if len <= 1 || n > len then events
    else begin
      let size = max 1 ((len + n - 1) / n) in
      let chunks = (len + size - 1) / size in
      let rec try_chunk i =
        if i >= chunks then None
        else begin
          let candidate = complement events ~chunk:i ~size in
          if candidate <> [] && check (with_events s candidate) then Some candidate
          else try_chunk (i + 1)
        end
      in
      match try_chunk 0 with
      | Some smaller -> go smaller (max 2 (n - 1))
      | None -> if n < len then go events (min len (2 * n)) else events
    end
  in
  go s.Schedule.events 2

let one_minimal ~check (s : Schedule.t) events =
  let rec go i events =
    if i >= List.length events then events
    else begin
      let candidate = List.filteri (fun j _ -> j <> i) events in
      if candidate <> [] && check (with_events s candidate) then go i candidate
      else go (i + 1) events
    end
  in
  go 0 events

(* Smaller variants of one event, best first. *)
let smaller_variants (ev : Schedule.event) =
  match ev with
  | Schedule.Crash_server { server; at_ms; down_ms } ->
      if down_ms > 1_000 then
        [ Schedule.Crash_server { server; at_ms; down_ms = max 500 (down_ms / 2) } ]
      else []
  | Schedule.Client_churn { client; at_ms; down_ms; crash } ->
      (if crash then [ Schedule.Client_churn { client; at_ms; down_ms; crash = false } ]
       else [])
      @
      if down_ms > 800 then
        [ Schedule.Client_churn { client; at_ms; down_ms = max 400 (down_ms / 2); crash } ]
      else []
  | Schedule.Partition_servers { servers; at_ms; dur_ms } ->
      if dur_ms > 2_000 then
        [ Schedule.Partition_servers { servers; at_ms; dur_ms = max 1_000 (dur_ms / 2) } ]
      else []
  | Schedule.Burst { client; group; at_ms; count; size } ->
      (if count > 1 then
         [ Schedule.Burst { client; group; at_ms; count = max 1 (count / 2); size } ]
       else [])
      @
      if size > 8 then
        [ Schedule.Burst { client; group; at_ms; count; size = max 8 (size / 2) } ]
      else []
  | Schedule.Hot_burst { client; group; at_ms; count; size } ->
      (* first try demoting the skew itself: a plain burst spreads the same
         load over all shards *)
      [ Schedule.Burst { client; group; at_ms; count; size } ]
      @ (if count > 1 then
           [ Schedule.Hot_burst { client; group; at_ms; count = max 1 (count / 2); size } ]
         else [])
      @
      if size > 8 then
        [ Schedule.Hot_burst { client; group; at_ms; count; size = max 8 (size / 2) } ]
      else []
  | Schedule.Lock_cycle { client; group; lock; at_ms; hold_ms } ->
      if hold_ms > 200 then
        [ Schedule.Lock_cycle { client; group; lock; at_ms; hold_ms = max 100 (hold_ms / 2) } ]
      else []
  | Schedule.Reduce _ -> []
  | Schedule.Crash_relay _ -> [] (* permanent and parameterless: drop or keep *)

let shrink_params ~check (s : Schedule.t) events =
  let events = ref events in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iteri
      (fun i ev ->
        List.iter
          (fun variant ->
            let candidate =
              List.mapi (fun j e -> if j = i then variant else e) !events
            in
            if (not !progress) && check (with_events s candidate) then begin
              events := candidate;
              progress := true
            end)
          (smaller_variants ev))
      !events
  done;
  !events

let shrink ?(max_attempts = 220) ~still_fails (s : Schedule.t) =
  let attempts = ref 0 in
  let check candidate =
    !attempts < max_attempts
    && begin
         incr attempts;
         still_fails candidate
       end
  in
  let events = ddmin ~check s in
  let events = one_minimal ~check s events in
  let events = shrink_params ~check s events in
  let shrunk = with_events s events in
  ( shrunk,
    {
      sh_attempts = !attempts;
      sh_kept = List.length events;
      sh_dropped = List.length s.Schedule.events - List.length events;
    } )
