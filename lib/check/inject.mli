(** The single source of truth for corona-check's deliberate bug
    injections. The [--inject] help text and the argument parser are both
    generated from {!specs}, and a unit test diffs the binary's help
    against this registry — so a new injection cannot be added without its
    documentation, and the documentation cannot drift from what the parser
    accepts. *)

type t = {
  skip_reconcile : bool;
      (** drop the post-heal reconciliation step after a partition *)
  skip_rejoin : bool;
      (** reconnecting clients "forget" to rejoin groups they were in *)
  skip_barrier : bool;
      (** sharded deployments: membership views fan directly instead of
          riding the cross-shard barrier (lock grants stay barriered) *)
  relay_crash : bool;
      (** HAZARD, not a bug: force a deterministic mid-run relay crash on
          top of whatever the schedule drew — the system must fail members
          over to a sibling relay and still satisfy every oracle *)
  skip_failover : bool;
      (** relay deployments: members whose relay died "forget" to
          reconnect to the sibling, stalling their streams *)
}

val none : t

type spec = { sp_name : string; sp_doc : string; sp_set : t -> t }

val specs : spec list

val names : string list

val of_string : string -> t option
(** The injection named on the command line, applied to {!none}. *)

val spec_doc : unit -> string
(** The complete help line for [--inject], built from the registry. *)
