(* Per-agent observation logs. Everything an oracle judges comes from here:
   each client agent appends timestamped entries as its callbacks fire, and
   the determinism regression compares two runs' logs byte-for-byte. *)

type entry =
  | Connected of { incarnation : int }
  | Conn_lost of { reason : string }
  | Crashed
  | Restarted
  | Joined of { group : string; next : int }
      (* successful join/rejoin; [next] is the first sequence number this
         agent will be shown after the join (at_seqno of the reply) *)
  | Join_failed of { group : string; why : string }
  | Delivered of { group : string; seqno : int; sender : string; kind : string; obj : string; data : string }
  | View of { group : string; change : string; members : string list }
  | Shard_view of { group : string; bar : int; vector : int list; op : string }
      (* cross-shard barrier op applied at the stamped per-shard vector;
         sharded deliveries and joins are recorded under synthesized
         per-stream group names "g#s", so only barrier stamps need a
         dedicated entry *)
  | Lock_granted of { group : string; lock : string }
  | Lock_released of { group : string; lock : string }
  | Note of string

type t = {
  o_agent : string;
  mutable o_entries : (float * entry) list; (* newest first *)
}

let create agent = { o_agent = agent; o_entries = [] }

let agent t = t.o_agent

let record t ~now entry = t.o_entries <- (now, entry) :: t.o_entries

let entries t = List.rev t.o_entries

let entry_line = function
  | Connected { incarnation } -> Printf.sprintf "connected inc=%d" incarnation
  | Conn_lost { reason } -> Printf.sprintf "conn-lost %s" reason
  | Crashed -> "crashed"
  | Restarted -> "restarted"
  | Joined { group; next } -> Printf.sprintf "joined %s next=%d" group next
  | Join_failed { group; why } -> Printf.sprintf "join-failed %s: %s" group why
  | Delivered { group; seqno; sender; kind; obj; data } ->
      Printf.sprintf "delivered %s #%d from=%s kind=%s obj=%s data=%s" group seqno sender
        kind obj data
  | View { group; change; members } ->
      Printf.sprintf "view %s %s [%s]" group change (String.concat "," members)
  | Shard_view { group; bar; vector; op } ->
      Printf.sprintf "shard-view %s bar=%d vec=[%s] op=%s" group bar
        (String.concat "," (List.map string_of_int vector))
        op
  | Lock_granted { group; lock } -> Printf.sprintf "lock-granted %s/%s" group lock
  | Lock_released { group; lock } -> Printf.sprintf "lock-released %s/%s" group lock
  | Note s -> Printf.sprintf "note %s" s

(* One line per entry, "agent @ time entry" — the unit of byte-for-byte
   trace comparison in the determinism regression. *)
let lines t =
  List.map
    (fun (at, e) -> Printf.sprintf "%s @%.3f %s" t.o_agent at (entry_line e))
    (entries t)

(* The per-group update stream this agent observed, with the join markers
   that tell the total-order oracle where the stream may legitimately
   (re)start. *)
type stream_item =
  | S_start of { at : float; next : int } (* Joined: expect this seqno next *)
  | S_update of {
      at : float;
      seqno : int;
      sender : string;
      kind : string;
      obj : string;
      data : string;
    }

let stream t ~group =
  List.filter_map
    (fun (at, e) ->
      match e with
      | Joined { group = g; next } when g = group -> Some (S_start { at; next })
      | Delivered { group = g; seqno; sender; kind; obj; data } when g = group ->
          Some (S_update { at; seqno; sender; kind; obj; data })
      | _ -> None)
    (entries t)

let groups_seen t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun (_, e) ->
         match e with
         | Joined { group; _ } | Delivered { group; _ } -> Some group
         | _ -> None)
       (entries t))
