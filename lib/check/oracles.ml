(* The invariant oracles. Each takes the post-quiescence evidence — client
   observation logs, server state copies, lock journals — and returns
   violations; an empty list means the run upheld the protocol contract. *)

type violation = { v_oracle : string; v_detail : string }

let violation_line v = Printf.sprintf "[%s] %s" v.v_oracle v.v_detail

type input = {
  i_copies : (string * Deploy.copy list) list; (* per group, live copies *)
  i_journals : (string * string * Corona.Locks.event list) list;
      (* (owner, group, events) — one journal per server incarnation *)
  i_clients : Observe.t list;
  i_client_states : (string * string * string) list;
      (* (agent, group, digest) for agents joined & connected at the end *)
  i_members : (string * string list) list; (* per group, the servers' view *)
  i_expected_members : (string * string list) list;
      (* per group, agents that believe they are joined at the end *)
  i_eras : float list; (* single-server restart times, oldest first *)
  i_barriers : (string * Proto.Message.barrier_frame list) list;
      (* per coordinating node, its cross-shard barrier journal (oldest
         first); [] unsharded *)
  i_shards : int; (* deployment shard count; 1 = classic sequencing *)
  i_relay : bool; (* relay-fronted deployment: delivery completeness applies *)
}

(* Sequence numbers restart below their high-water mark when a single
   server recovers from a crash that lost un-flushed log tail (§6 accepts
   this), so cross-client agreement is scoped to the server era a delivery
   happened in. *)
let era_of eras at = List.length (List.filter (fun t -> t <= at) eras)

(* Oracle 1 — total order: within each (re)join segment a client observes a
   contiguous, strictly increasing run of sequence numbers, and any two
   clients that observe the same (era, seqno) of a group observe the same
   update. *)
let total_order input =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "total-order"; v_detail = d } :: !violations) fmt in
  let seen : (string * int * int, string * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun obs ->
      let agent = Observe.agent obs in
      List.iter
        (fun group ->
          let expected = ref None in
          List.iter
            (fun item ->
              match item with
              | Observe.S_start { next; _ } -> expected := Some next
              | Observe.S_update { at; seqno; sender; kind; obj; data } -> (
                  (match !expected with
                  | None ->
                      add "%s: %s delivered #%d before any join" agent group seqno
                  | Some e when seqno <> e ->
                      add "%s: %s expected #%d, delivered #%d" agent group e seqno
                  | Some _ -> ());
                  expected := Some (seqno + 1);
                  let key = (group, era_of input.i_eras at, seqno) in
                  let content = Printf.sprintf "%s|%s|%s|%s" sender kind obj data in
                  match Hashtbl.find_opt seen key with
                  | None -> Hashtbl.replace seen key (content, agent)
                  | Some (content', agent') when content' <> content ->
                      add "%s #%d differs between %s (%s) and %s (%s)" group seqno
                        agent' content' agent content
                  | Some _ -> ()))
            (Observe.stream obs ~group))
        (Observe.groups_seen obs))
    input.i_clients;
  List.rev !violations

(* Oracle 2 — state convergence: every live copy of a group (server-side
   and the replicas kept by clients still in the group) reports the same
   digest, and the server copies agree on the next sequence number. *)
let convergence input =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "convergence"; v_detail = d } :: !violations) fmt in
  List.iter
    (fun (group, copies) ->
      match copies with
      | [] -> ()
      | ({ Deploy.c_owner; c_digest; c_next; _ } as _ref_copy) :: rest ->
          List.iter
            (fun (c : Deploy.copy) ->
              if c.c_digest <> c_digest then
                add "%s: %s digest %s <> %s digest %s" group c_owner c_digest c.c_owner
                  c.c_digest;
              if c.c_next <> c_next then
                add "%s: %s next=%d <> %s next=%d" group c_owner c_next c.c_owner
                  c.c_next)
            rest;
          List.iter
            (fun (agent, g, digest) ->
              if g = group && digest <> c_digest then
                add "%s: client %s digest %s <> %s digest %s" group agent digest c_owner
                  c_digest)
            input.i_client_states)
    input.i_copies;
  List.rev !violations

(* Oracle 3 — membership sanity: no member appears twice in a view, a join
   view contains the joiner, a leave/crash view does not contain the
   departed, and at quiescence the servers' member list of each group is
   exactly the set of agents that believe they are joined. *)
let membership input =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "membership"; v_detail = d } :: !violations) fmt in
  List.iter
    (fun obs ->
      let agent = Observe.agent obs in
      List.iter
        (fun (_, entry) ->
          match entry with
          | Observe.View { group; change; members } -> (
              let sorted = List.sort String.compare members in
              let rec dup = function
                | a :: (b :: _ as tl) -> if a = b then Some a else dup tl
                | _ -> None
              in
              (match dup sorted with
              | Some m -> add "%s: %s saw %s twice in a view (%s)" group agent m change
              | None -> ());
              match String.index_opt change ' ' with
              | Some i -> (
                  let verb = String.sub change 0 i in
                  let who = String.sub change (i + 1) (String.length change - i - 1) in
                  match verb with
                  | "joined" when not (List.mem who members) ->
                      add "%s: %s got '%s' but view omits them" group agent change
                  | "left" | "crashed" ->
                      if List.mem who members then
                        add "%s: %s got '%s' but view still lists them" group agent
                          change
                  | _ -> ())
              | None -> ())
          | _ -> ())
        (Observe.entries obs))
    input.i_clients;
  List.iter
    (fun (group, actual) ->
      let expected =
        match List.assoc_opt group input.i_expected_members with
        | Some l -> List.sort String.compare l
        | None -> []
      in
      let actual = List.sort String.compare actual in
      if actual <> expected then
        add "%s: servers list [%s] but joined agents are [%s]" group
          (String.concat "," actual) (String.concat "," expected))
    input.i_members;
  List.rev !violations

(* Oracle 4 — lock safety: replay each journal against the model "one
   holder at a time, grants strictly in queue order, releases only by the
   holder". *)
let locks input =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "locks"; v_detail = d } :: !violations) fmt in
  List.iter
    (fun (owner, group, events) ->
      let tables : (string, string option ref * string list ref) Hashtbl.t =
        Hashtbl.create 4
      in
      let table lock =
        match Hashtbl.find_opt tables lock with
        | Some t -> t
        | None ->
            let t = (ref None, ref []) in
            Hashtbl.replace tables lock t;
            t
      in
      List.iter
        (fun (ev : Corona.Locks.event) ->
          match ev with
          | Granted (lock, m) -> (
              let holder, queue = table lock in
              (match !holder with
              | Some h ->
                  add "%s/%s@%s: granted to %s while %s holds it" group lock owner m h
              | None -> ());
              holder := Some m;
              match !queue with
              | head :: tl ->
                  if head = m then queue := tl
                  else
                    add "%s/%s@%s: granted to %s but %s is first in queue" group lock
                      owner m head
              | [] -> ())
          | Queued (lock, m) ->
              let _, queue = table lock in
              queue := !queue @ [ m ]
          | Unqueued (lock, m) ->
              let _, queue = table lock in
              let rec drop = function
                | [] ->
                    add "%s/%s@%s: unqueued %s who was not queued" group lock owner m;
                    []
                | x :: tl -> if x = m then tl else x :: drop tl
              in
              queue := drop !queue
          | Released (lock, m) -> (
              let holder, _ = table lock in
              match !holder with
              | Some h when h = m -> holder := None
              | Some h ->
                  add "%s/%s@%s: %s released a lock held by %s" group lock owner m h
              | None -> add "%s/%s@%s: %s released a free lock" group lock owner m))
        events)
    input.i_journals;
  List.rev !violations

(* Oracle 5 — log-reduction fidelity: for every copy, base state + retained
   updates must replay to exactly the live materialized state, and the
   retained log must be contiguous from the base. *)
let fidelity input =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "fidelity"; v_detail = d } :: !violations) fmt in
  List.iter
    (fun (group, copies) ->
      List.iter
        (fun (c : Deploy.copy) ->
          match c.Deploy.c_base with
          | None -> ()
          | Some (objects, base_seqno) ->
              let state = Corona.Shared_state.of_objects objects in
              List.iteri
                (fun i (u : Proto.Types.update) ->
                  if u.seqno <> base_seqno + i then
                    add "%s@%s: retained log has #%d where #%d belongs" group
                      c.Deploy.c_owner u.seqno (base_seqno + i);
                  Corona.Shared_state.apply state u)
                c.Deploy.c_updates;
              let replayed = Corona.Shared_state.digest state in
              if replayed <> c.Deploy.c_digest then
                add "%s@%s: base+log replays to %s but live state is %s" group
                  c.Deploy.c_owner replayed c.Deploy.c_digest;
              let end_seqno = base_seqno + List.length c.Deploy.c_updates in
              if end_seqno <> c.Deploy.c_next then
                add "%s@%s: base+log ends at #%d but next seqno is %d" group
                  c.Deploy.c_owner end_seqno c.Deploy.c_next)
        copies)
    input.i_copies;
  List.rev !violations

(* Oracle 6 — cross-shard total order. Sharded deployments only. Barriers
   are the one place the N independent shard streams must agree on a common
   point, so the oracle checks that the stamps behaved like a total order:

   - agreement: every observer of barrier [bar] saw the same group, the
     same per-shard position vector and the same op;
   - monotonicity: the vectors one agent observes for a group never move
     backwards in any component (barriers are totally ordered per group);
   - journal shape: a Commit is journaled only after a Prepare of the same
     barrier, and its stamped vector covers every shard;
   - no unstamped views: every membership view a client sees in a sharded
     group is matched by a barrier stamp (catches the skip-barrier
     injection, which fans views directly);
   - copy agreement: live server copies of a group report identical
     per-shard position vectors at quiescence. *)
let cross_shard input =
  if input.i_shards <= 1 then []
  else begin
    let violations = ref [] in
    let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "cross-shard"; v_detail = d } :: !violations) fmt in
    let vec_s v = String.concat "," (List.map string_of_int v) in
    let seen : (int, string * int list * string * string) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun obs ->
        let agent = Observe.agent obs in
        let last : (string, int list) Hashtbl.t = Hashtbl.create 4 in
        let views : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 4 in
        let counts group =
          match Hashtbl.find_opt views group with
          | Some c -> c
          | None ->
              let c = (ref 0, ref 0) in
              Hashtbl.replace views group c;
              c
        in
        List.iter
          (fun (_, e) ->
            match e with
            | Observe.View { group; _ } ->
                let plain, _ = counts group in
                incr plain
            | Observe.Shard_view { group; bar; vector; op } -> (
                (match Hashtbl.find_opt seen bar with
                | None -> Hashtbl.replace seen bar (group, vector, op, agent)
                | Some (g', v', o', a') ->
                    if g' <> group || v' <> vector || o' <> op then
                      add "bar %d: %s saw %s/[%s]/%s but %s saw %s/[%s]/%s" bar a' g'
                        (vec_s v') o' agent group (vec_s vector) op);
                if List.length vector <> input.i_shards then
                  add "%s: %s bar %d stamped %d positions for %d shards" agent group
                    bar (List.length vector) input.i_shards;
                (match Hashtbl.find_opt last group with
                | Some prev
                  when List.length prev = List.length vector
                       && List.exists2 (fun p v -> v < p) prev vector ->
                    add "%s: %s bar %d vector [%s] moved backwards from [%s]" agent
                      group bar (vec_s vector) (vec_s prev)
                | _ -> ());
                Hashtbl.replace last group vector;
                if String.length op >= 4 && String.sub op 0 4 = "view" then begin
                  let _, stamped = counts group in
                  incr stamped
                end)
            | _ -> ())
          (Observe.entries obs);
        Hashtbl.iter
          (fun group (plain, stamped) ->
            if !plain > !stamped then
              add "%s: %s saw %d membership views but only %d barrier stamps" agent
                group !plain !stamped)
          views)
      input.i_clients;
    List.iter
      (fun (owner, frames) ->
        let prepared : (int, unit) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (f : Proto.Message.barrier_frame) ->
            match f.Proto.Message.bf_phase with
            | Proto.Message.Prepare -> Hashtbl.replace prepared f.Proto.Message.bf_bar ()
            | Proto.Message.Commit ->
                let bar = f.Proto.Message.bf_bar in
                if not (Hashtbl.mem prepared bar) then
                  add "%s: journaled commit b%d without a prepare" owner bar;
                if List.length f.Proto.Message.bf_vector <> input.i_shards then
                  add "%s: commit b%d stamps %d positions for %d shards" owner bar
                    (List.length f.Proto.Message.bf_vector)
                    input.i_shards)
          frames)
      input.i_barriers;
    List.iter
      (fun (group, copies) ->
        match
          List.filter (fun (c : Deploy.copy) -> c.Deploy.c_vector <> []) copies
        with
        | [] -> ()
        | c0 :: rest ->
            List.iter
              (fun (c : Deploy.copy) ->
                if c.Deploy.c_vector <> c0.Deploy.c_vector then
                  add "%s: %s vector [%s] <> %s vector [%s]" group c0.Deploy.c_owner
                    (vec_s c0.Deploy.c_vector) c.Deploy.c_owner
                    (vec_s c.Deploy.c_vector))
              rest)
      input.i_copies;
    List.rev !violations
  end

(* Oracle 7 — delivery completeness. Relay deployments only: the relay hop
   and its crash-failover path add places where a tail of a group's stream
   can silently go missing (a relay dies with fan-outs in flight, a member
   "fails over" to a sibling but never resyncs). Every agent still expected
   in a group at quiescence must have advanced its observed stream to the
   root's next sequence number: the position folds Joined baselines and
   Delivered seqnos, so a member that crashed its relay and correctly
   rejoined with Updates_since ends at [c_next] even though it never saw
   the in-flight losses as deliveries. Catches the skip-failover
   injection, whose stalled members stop short. *)
let completeness input =
  if not input.i_relay then []
  else begin
    let violations = ref [] in
    let add fmt = Printf.ksprintf (fun d -> violations := { v_oracle = "completeness"; v_detail = d } :: !violations) fmt in
    let position obs ~group =
      List.fold_left
        (fun pos item ->
          match item with
          | Observe.S_start { next; _ } -> max pos next
          | Observe.S_update { seqno; _ } -> max pos (seqno + 1))
        (-1)
        (Observe.stream obs ~group)
    in
    List.iter
      (fun (group, expected) ->
        match List.assoc_opt group input.i_copies with
        | None | Some [] -> ()
        | Some (copy :: _) ->
            let next = copy.Deploy.c_next in
            List.iter
              (fun member ->
                match
                  List.find_opt
                    (fun o -> Observe.agent o = member)
                    input.i_clients
                with
                | None -> add "%s: expected member %s has no observation log" group member
                | Some obs ->
                    let pos = position obs ~group in
                    if pos < 0 then
                      add "%s: %s is expected in the group but never observed its stream"
                        group member
                    else if pos < next then
                      add "%s: %s stalled at position %d but the root's stream reached %d"
                        group member pos next)
              expected)
      input.i_expected_members;
    List.rev !violations
  end

let check input =
  total_order input @ convergence input @ membership input @ locks input
  @ fidelity input @ cross_shard input @ completeness input
