(* Randomized fault schedules. A schedule is pure data: deployment shape
   plus a time-ordered list of fault / traffic events, all times in integer
   milliseconds of virtual time so schedules print exactly and replay
   bit-for-bit. Every draw comes from [Sim.Rng] — never wall-clock. *)

type kind =
  | Single of { sync_log : bool }
  | Replicated of { replicas : int }
  | Sharded of { replicas : int; shards : int }
      (* replicated deployment with N-way partitioned sequencing: every
         group's keyspace is spread over [shards] per-shard seqno streams,
         cross-shard ops ride the two-phase barrier *)
  | Relay of { relays : int }
      (* single root fronted by [relays] edge relays: every client connects
         through its slice's relay, fan-out takes the hierarchical
         Relay_fanout path, and a relay crash fails its members over to the
         next alive sibling *)

type event =
  | Crash_server of { server : int; at_ms : int; down_ms : int }
      (* single deployment: restart (same storage, §6 recovery) after
         [down_ms]; replicated: [down_ms = 0] and the crash is permanent
         (failover, not restart, is the recovery path of §4.2) *)
  | Client_churn of { client : int; at_ms : int; down_ms : int; crash : bool }
      (* [crash = false]: graceful disconnect, reconnect + rejoin after
         [down_ms]; [crash = true]: host crash, restart then rejoin *)
  | Partition_servers of { servers : int list; at_ms : int; dur_ms : int }
      (* isolate these (client-free) server indexes from everyone else,
         heal after [dur_ms] and reconcile *)
  | Burst of { client : int; group : int; at_ms : int; count : int; size : int }
  | Hot_burst of { client : int; group : int; at_ms : int; count : int; size : int }
      (* skewed key distribution: every update of the burst hits ONE fixed
         object, i.e. one shard's stream takes the whole load while the
         others idle — exercises single-stream gap repair and barrier
         stalls under sharding (plain total order when unsharded) *)
  | Lock_cycle of { client : int; group : int; lock : int; at_ms : int; hold_ms : int }
  | Reduce of { client : int; group : int; at_ms : int }
  | Crash_relay of { relay : int; at_ms : int }
      (* relay deployments: kill the relay's host permanently; its members
         fail over to the next alive sibling and resync via Updates_since *)

type t = {
  kind : kind;
  clients : int;
  groups : int;
  horizon_ms : int;
  events : event list; (* sorted by start time *)
}

let event_at = function
  | Crash_server { at_ms; _ }
  | Client_churn { at_ms; _ }
  | Partition_servers { at_ms; _ }
  | Burst { at_ms; _ }
  | Hot_burst { at_ms; _ }
  | Lock_cycle { at_ms; _ }
  | Reduce { at_ms; _ }
  | Crash_relay { at_ms; _ } ->
      at_ms

(* Closed interval of virtual time an event influences, with slack for the
   reconnect/rejoin tail. *)
let event_span = function
  | Crash_server { at_ms; down_ms; _ } -> (at_ms, at_ms + down_ms)
  | Client_churn { at_ms; down_ms; _ } -> (at_ms, at_ms + down_ms + 1_500)
  | Partition_servers { at_ms; dur_ms; _ } -> (at_ms, at_ms + dur_ms)
  | Lock_cycle { at_ms; hold_ms; _ } -> (at_ms, at_ms + hold_ms + 500)
  | Burst { at_ms; _ } | Hot_burst { at_ms; _ } | Reduce { at_ms; _ } -> (at_ms, at_ms)
  | Crash_relay { at_ms; _ } -> (at_ms, at_ms + 2_000) (* failover + rejoin tail *)

let sort_events evs =
  List.stable_sort (fun a b -> Int.compare (event_at a) (event_at b)) evs

let servers_of kind =
  match kind with
  | Single _ | Relay _ -> 1
  | Replicated { replicas } | Sharded { replicas; _ } -> replicas + 1

(* Server indexes that never serve a client: agents are pinned round-robin
   to nodes 1..replicas (the initial coordinator srv-0 "manages only a
   reduced number of connections", §4.1), so partitions that isolate only
   these indexes cannot split a client from the sequencing majority. *)
let client_free_servers kind ~clients =
  match kind with
  | Single _ | Relay _ -> []
  | Replicated { replicas } | Sharded { replicas; _ } ->
      let serving = List.init clients (fun i -> 1 + (i mod replicas)) in
      List.filter
        (fun s -> not (List.mem s serving))
        (List.init (replicas + 1) (fun s -> s))

(* --- generation --------------------------------------------------------- *)

type profile = {
  p_clients : int * int;
  p_groups : int * int;
  p_events : int * int;
  p_horizon_ms : int;
}

let smoke_profile =
  { p_clients = (2, 3); p_groups = (1, 2); p_events = (4, 8); p_horizon_ms = 12_000 }

let full_profile =
  { p_clients = (3, 5); p_groups = (1, 3); p_events = (8, 16); p_horizon_ms = 20_000 }

let range rng (lo, hi) = lo + Sim.Rng.int rng (hi - lo + 1)

(* §6 single-server crash recovery reuses sequence numbers for updates that
   never reached the disk. That loss is accepted by the paper, so the
   oracles must not observe traffic racing a crash window: give every
   server-crash event an exclusive guard interval and drop whatever lands
   inside it (clients reconnect, rejoin and resend well within the guard). *)
let crash_guard_ms = 4_000

let spans_intersect (a0, a1) (b0, b1) = a0 <= b1 && b0 <= a1

let enforce_guards events =
  let events = sort_events events in
  let crash_spans = ref [] in
  let crashes, rest =
    List.partition (function Crash_server _ -> true | _ -> false) events
  in
  let kept_crashes =
    List.filter
      (fun ev ->
        let s0, s1 = event_span ev in
        let guarded = (s0 - crash_guard_ms, s1 + crash_guard_ms) in
        if List.exists (spans_intersect guarded) !crash_spans then false
        else begin
          crash_spans := guarded :: !crash_spans;
          true
        end)
      crashes
  in
  let kept_rest =
    List.filter
      (fun ev -> not (List.exists (spans_intersect (event_span ev)) !crash_spans))
      rest
  in
  sort_events (kept_crashes @ kept_rest)

(* [sharded] forces a sharded replicated deployment and [relay] a
   relay-fronted single root (the classic RNG draw sequence is untouched
   when both are off, so pinned seeds keep replaying the schedules that
   exposed historical bugs). *)
let generate ?(smoke = false) ?(sharded = false) ?(relay = false) rng =
  let p = if smoke then smoke_profile else full_profile in
  let clients = range rng p.p_clients in
  let groups = range rng p.p_groups in
  let kind =
    if relay then Relay { relays = 2 + Sim.Rng.int rng 3 }
    else if sharded then
      Sharded
        {
          replicas = 2 + Sim.Rng.int rng 2;
          shards = [| 2; 4; 8 |].(Sim.Rng.int rng 3);
        }
    else
      match Sim.Rng.int rng 5 with
      | 0 | 1 -> Single { sync_log = false }
      | 2 -> Single { sync_log = true }
      | _ -> Replicated { replicas = 2 + Sim.Rng.int rng 2 }
  in
  let horizon_ms = p.p_horizon_ms in
  let n_events = range rng p.p_events in
  let first_at = 2_000 in
  let draw_at () = range rng (first_at, horizon_ms - 1_000) in
  let single =
    match kind with
    | Single _ -> true
    | Relay _ | Replicated _ | Sharded _ -> false
  in
  let crash_budget = ref (if single then 2 else 1) in
  let partition_budget =
    ref (match client_free_servers kind ~clients with [] -> 0 | _ -> 1)
  in
  let draw_event () =
    match Sim.Rng.int rng 100 with
    | n when n < 35 ->
        let client = Sim.Rng.int rng clients in
        let group = Sim.Rng.int rng groups in
        let at_ms = draw_at () in
        let count = 1 + Sim.Rng.int rng 6 in
        let size = 8 + Sim.Rng.int rng 57 in
        (* extra draws only in sharded mode, so the classic sequence of RNG
           consumption — and thus every pinned seed — is unchanged *)
        if sharded && Sim.Rng.int rng 3 = 0 then
          Some
            (Hot_burst
               { client; group; at_ms; count = count + Sim.Rng.int rng 6; size })
        else Some (Burst { client; group; at_ms; count; size })
    | n when n < 55 ->
        Some
          (Lock_cycle
             {
               client = Sim.Rng.int rng clients;
               group = Sim.Rng.int rng groups;
               lock = Sim.Rng.int rng 2;
               at_ms = draw_at ();
               hold_ms = 200 + Sim.Rng.int rng 1_300;
             })
    | n when n < 72 ->
        Some
          (Client_churn
             {
               client = Sim.Rng.int rng clients;
               at_ms = range rng (first_at, horizon_ms - 4_000);
               down_ms = 800 + Sim.Rng.int rng 2_200;
               crash = Sim.Rng.bool rng;
             })
    | n when n < 84 -> (
        match kind with
        | Relay { relays } ->
            (* relay deployments draw relay crashes instead of root crashes
               (the root staying up is what makes relay failover a pure
               client-side matter); partitions are off — see above *)
            if !crash_budget = 0 then None
            else begin
              decr crash_budget;
              Some
                (Crash_relay
                   {
                     relay = Sim.Rng.int rng relays;
                     at_ms = range rng (first_at, horizon_ms - 8_000);
                   })
            end
        | Single _ | Replicated _ | Sharded _ ->
        if !crash_budget = 0 || !partition_budget = 0 && not single then None
        else begin
          decr crash_budget;
          if not single then partition_budget := 0;
          let servers = servers_of kind in
          Some
            (Crash_server
               {
                 server = Sim.Rng.int rng servers;
                 at_ms = range rng (first_at, horizon_ms - 8_000);
                 down_ms = (if single then 1_500 + Sim.Rng.int rng 2_000 else 0);
               })
        end)
    | n when n < 92 ->
        if !partition_budget = 0 then None
        else begin
          decr partition_budget;
          crash_budget := 0;
          (* a failover racing a partition heal is a different experiment *)
          match client_free_servers kind ~clients with
          | [] -> None
          | free ->
              let isolated =
                List.filteri (fun i _ -> i = 0 || Sim.Rng.bool rng) free
              in
              let at_ms = range rng (first_at, horizon_ms - 8_000) in
              Some
                (Partition_servers
                   { servers = isolated; at_ms; dur_ms = 3_000 + Sim.Rng.int rng 3_000 })
        end
    | _ ->
        Some
          (Reduce
             {
               client = Sim.Rng.int rng clients;
               group = Sim.Rng.int rng groups;
               at_ms = draw_at ();
             })
  in
  let events = ref [] in
  for _ = 1 to n_events do
    match draw_event () with Some ev -> events := ev :: !events | None -> ()
  done;
  { kind; clients; groups; horizon_ms; events = enforce_guards !events }

(* --- printing ----------------------------------------------------------- *)

let pp_kind fmt = function
  | Single { sync_log } ->
      Format.fprintf fmt "Check.Schedule.Single { sync_log = %b }" sync_log
  | Replicated { replicas } ->
      Format.fprintf fmt "Check.Schedule.Replicated { replicas = %d }" replicas
  | Sharded { replicas; shards } ->
      Format.fprintf fmt "Check.Schedule.Sharded { replicas = %d; shards = %d }"
        replicas shards
  | Relay { relays } ->
      Format.fprintf fmt "Check.Schedule.Relay { relays = %d }" relays

let pp_event fmt = function
  | Crash_server { server; at_ms; down_ms } ->
      Format.fprintf fmt "Crash_server { server = %d; at_ms = %d; down_ms = %d }" server
        at_ms down_ms
  | Client_churn { client; at_ms; down_ms; crash } ->
      Format.fprintf fmt
        "Client_churn { client = %d; at_ms = %d; down_ms = %d; crash = %b }" client at_ms
        down_ms crash
  | Partition_servers { servers; at_ms; dur_ms } ->
      Format.fprintf fmt "Partition_servers { servers = [%s]; at_ms = %d; dur_ms = %d }"
        (String.concat "; " (List.map string_of_int servers))
        at_ms dur_ms
  | Burst { client; group; at_ms; count; size } ->
      Format.fprintf fmt
        "Burst { client = %d; group = %d; at_ms = %d; count = %d; size = %d }" client
        group at_ms count size
  | Hot_burst { client; group; at_ms; count; size } ->
      Format.fprintf fmt
        "Hot_burst { client = %d; group = %d; at_ms = %d; count = %d; size = %d }" client
        group at_ms count size
  | Lock_cycle { client; group; lock; at_ms; hold_ms } ->
      Format.fprintf fmt
        "Lock_cycle { client = %d; group = %d; lock = %d; at_ms = %d; hold_ms = %d }"
        client group lock at_ms hold_ms
  | Reduce { client; group; at_ms } ->
      Format.fprintf fmt "Reduce { client = %d; group = %d; at_ms = %d }" client group
        at_ms
  | Crash_relay { relay; at_ms } ->
      Format.fprintf fmt "Crash_relay { relay = %d; at_ms = %d }" relay at_ms

(* A copy-pasteable OCaml scenario: feed it back through
   [Check.Runner.execute] to replay the exact run. *)
let pp_ocaml ~seed fmt t =
  Format.fprintf fmt "@[<v>let schedule : Check.Schedule.t =@;<1 2>@[<v 2>{@ ";
  Format.fprintf fmt "kind = %a;@ " pp_kind t.kind;
  Format.fprintf fmt "clients = %d;@ groups = %d;@ horizon_ms = %d;@ " t.clients t.groups
    t.horizon_ms;
  Format.fprintf fmt "@[<v 2>events =@ [@[<v 3>";
  List.iteri
    (fun i ev ->
      if i > 0 then Format.fprintf fmt "@ ";
      Format.fprintf fmt "Check.Schedule.%a;" pp_event ev)
    t.events;
  Format.fprintf fmt "@]@ ];@]@]@ }@ ";
  Format.fprintf fmt "let () =@;<1 2>@[<v>let r = Check.Runner.execute ~seed:%LdL schedule in@ "
    seed;
  Format.fprintf fmt
    "List.iter (fun v -> print_endline (Check.Oracles.violation_line v))@;<1 2>r.Check.Runner.r_violations@]@]"
