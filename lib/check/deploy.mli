(** Deployment builder: turns a {!Schedule.kind} into a running service
    and gives the runner one vocabulary of operations (crash / restart /
    partition / heal / reconcile) plus the state extraction the oracles
    need (per-group copies with digests and retained logs, lock journals
    across server incarnations, restart-era boundaries). *)

type copy = {
  c_owner : string;  (** which server/incarnation holds this copy *)
  c_digest : string;
  c_next : int;
      (** next sequence number the copy expects; sharded copies report the
          sum of their per-shard positions *)
  c_base : ((Proto.Types.object_id * string) list * int) option;
  c_updates : Proto.Types.update list;  (** retained log from the base *)
  c_vector : int list;  (** per-shard stream positions; [] unsharded *)
}

type t

val fabric : t -> Net.Fabric.t

val create :
  Net.Fabric.t -> ?sharded_direct_views:bool -> ?clients:int -> Schedule.kind -> t
(** [sharded_direct_views] is the skip-barrier bug injection; [clients]
    sizes the relay slice partition (Relay kind only). *)

val shards : t -> int

val client_target : t -> int -> Net.Host.t
(** Where agent [i] should (re)connect right now: its serving replica, or
    its slice's owning (or, after a crash, adopting) relay. *)

val crash_server : t -> int -> unit
(** Crash server [idx] (single deployments snapshot its lock journal
    first, so the oracle evidence survives the incarnation). *)

val restart_server : t -> unit
(** Single deployment only: bring the host back and start a fresh server
    incarnation over the same stable storage (§6 recovery). *)

val restart_times : t -> float list
(** Era boundaries, oldest first; [] for replicated deployments. *)

val relay_count : t -> int

val relay_at : t -> int -> Corona.Relay.t option
(** The relay at this index, [None] out of range (or not yet started). *)

val crash_relay : t -> int -> unit
(** Relay deployments: kill a relay's host permanently. Its members fail
    over client-side. *)

val partition : t -> isolated:int list -> unit
(** Isolate these server indexes from every other host. *)

val heal : t -> unit

val reconcile_after_heal : t -> unit
(** Compare every group's live copies; when two disagree, run the §4.2
    reconciliation adopting the freshest side, otherwise just re-unify the
    cluster under the earliest live server. *)

val live_nodes : t -> Replication.Node.t list
(** Replicated deployments only; [] for a single server. *)

val group_ids : t -> string list

val copies : t -> string -> copy list
(** Live copies of a group, for the convergence/fidelity oracles. *)

val members : t -> string -> string list
(** The servers' view of a group's membership (replicated: union of the
    members each live node serves). *)

val lock_journals : t -> (string * string * Corona.Locks.event list) list
(** (owner, group, events), including journals snapshotted from crashed
    single-server incarnations. *)

val barrier_frames : t -> (string * Proto.Message.barrier_frame list) list
(** Decoded cross-shard barrier journals of every live node that ever
    coordinated barriers (owner label, frames oldest first). *)
