(** Per-agent observation logs. Everything an oracle judges comes from
    here: each client agent appends timestamped entries as its callbacks
    fire, and the determinism regression compares two runs' logs
    byte-for-byte. *)

type entry =
  | Connected of { incarnation : int }
  | Conn_lost of { reason : string }
  | Crashed
  | Restarted
  | Joined of { group : string; next : int }
      (** successful join/rejoin; [next] is the first sequence number this
          agent will be shown after the join (at_seqno of the reply) *)
  | Join_failed of { group : string; why : string }
  | Delivered of {
      group : string;
      seqno : int;
      sender : string;
      kind : string;
      obj : string;
      data : string;
    }
  | View of { group : string; change : string; members : string list }
  | Shard_view of { group : string; bar : int; vector : int list; op : string }
      (** cross-shard barrier op applied at the stamped per-shard vector *)
  | Lock_granted of { group : string; lock : string }
  | Lock_released of { group : string; lock : string }
  | Note of string

type t

val create : string -> t

val agent : t -> string

val record : t -> now:float -> entry -> unit

val entries : t -> (float * entry) list
(** Oldest first. *)

val lines : t -> string list
(** One line per entry, "agent @ time entry" — the unit of byte-for-byte
    trace comparison in the determinism regression. *)

(** The per-group update stream an agent observed, with the join markers
    that tell the total-order oracle where the stream may legitimately
    (re)start. *)
type stream_item =
  | S_start of { at : float; next : int }  (** Joined: expect this seqno next *)
  | S_update of {
      at : float;
      seqno : int;
      sender : string;
      kind : string;
      obj : string;
      data : string;
    }

val stream : t -> group:string -> stream_item list

val groups_seen : t -> string list
(** Groups this agent joined or received deliveries for, sorted. *)
