(* Schedule executor. Builds the deployment, drives client agents through
   the schedule's traffic and fault events, runs the simulation to
   quiescence and hands the evidence to the oracles.

   Everything here is deterministic: agent behaviour depends only on the
   schedule and on simulation callbacks, so the same (seed, schedule) pair
   replays the same trace byte-for-byte. *)

module T = Proto.Types

(* Re-export of the injection registry's record so callers keep writing
   [{ Runner.skip_reconcile = ...; ... }] literals while [bin/corona_check]
   parses and documents the flags from the single {!Inject.specs} source. *)
type bug = Inject.t = {
  skip_reconcile : bool;
  skip_rejoin : bool;
  skip_barrier : bool;
  relay_crash : bool;
  skip_failover : bool;
}

let no_bug = Inject.none

type result = {
  r_violations : Oracles.violation list;
  r_trace : string list;
  r_deliveries : int;
}

let ms x = float_of_int x /. 1000.

let group_name i = Printf.sprintf "g%d" i

type agent = {
  a_idx : int;
  a_name : string;
  a_host : Net.Host.t;
  a_obs : Observe.t;
  a_groups : string list;
  mutable a_client : Corona.Client.t option; (* live connection *)
  mutable a_old : Corona.Client.t option; (* kept for single-mode reconnect *)
  mutable a_want : bool; (* should currently be connected *)
  a_joined_once : (string, unit) Hashtbl.t;
  a_pending_locks : (string * string, int) Hashtbl.t; (* queued acquire → hold ms *)
  mutable a_payload : int;
}

let execute ?(bug = no_bug) ~seed (sched : Schedule.t) =
  let engine = Sim.Engine.create ~seed () in
  let fabric = Net.Fabric.create engine in
  let deploy =
    Deploy.create fabric ~sharded_direct_views:bug.skip_barrier
      ~clients:sched.Schedule.clients sched.Schedule.kind
  in
  (* Relay deployments keep a single root, so they share the single-mode
     reconnect path (surviving replicas + Updates_since resync) — just
     against whichever relay now owns the member's slice. *)
  let single =
    match sched.Schedule.kind with
    | Schedule.Single _ | Schedule.Relay _ -> true
    | Schedule.Replicated _ | Schedule.Sharded _ -> false
  in
  let relay =
    match sched.Schedule.kind with
    | Schedule.Relay _ -> true
    | Schedule.Single _ | Schedule.Replicated _ | Schedule.Sharded _ -> false
  in
  let groups = List.init sched.Schedule.groups group_name in
  let agents =
    Array.init sched.Schedule.clients (fun i ->
        let name = Printf.sprintf "c%d" i in
        {
          a_idx = i;
          a_name = name;
          a_host =
            Net.Fabric.add_host fabric ~name:(Printf.sprintf "cl-%d" i)
              ~cpu:Net.Host.sparc20 ();
          a_obs = Observe.create name;
          a_groups =
            List.sort_uniq String.compare
              [
                group_name (i mod sched.Schedule.groups);
                group_name ((i + 1) mod sched.Schedule.groups);
              ];
          a_client = None;
          a_old = None;
          a_want = true;
          a_joined_once = Hashtbl.create 4;
          a_pending_locks = Hashtbl.create 4;
          a_payload = 0;
        })
  in
  let now () = Sim.Engine.now engine in
  let record a e = Observe.record a.a_obs ~now:(now ()) e in
  let after delay k = ignore (Sim.Engine.schedule engine ~delay k) in
  let at_ms t_ms k = ignore (Sim.Engine.schedule_at engine (ms t_ms) k) in
  let live_client a =
    match a.a_client with
    | Some c when Corona.Client.is_connected c -> Some c
    | Some _ | None -> None
  in
  let release_lock a group lock =
    match live_client a with
    | None -> ()
    | Some c ->
        Corona.Client.release_lock c ~group ~lock ~k:(fun reply ->
            match reply with
            | Corona.Client.R_lock `Released -> record a (Observe.Lock_released { group; lock })
            | Corona.Client.R_failed why ->
                record a (Observe.Note (Printf.sprintf "release %s/%s failed: %s" group lock why))
            | _ -> ())
  in
  let rec join_group a g ~attempts =
    match live_client a with
    | None -> ()
    | Some c ->
        Corona.Client.rejoin c ~group:g ~notify:true ~k:(fun reply ->
            match reply with
            | Corona.Client.R_join { at_seqno; _ } ->
                Hashtbl.replace a.a_joined_once g ();
                record a (Observe.Joined { group = g; next = at_seqno })
            | Corona.Client.R_failed why ->
                record a (Observe.Join_failed { group = g; why });
                if attempts > 0 then
                  after 0.4 (fun () -> join_group a g ~attempts:(attempts - 1))
            | _ -> ())
          ()
  in
  let join_groups a =
    List.iter
      (fun g ->
        if bug.skip_rejoin && Hashtbl.mem a.a_joined_once g then
          record a (Observe.Note (Printf.sprintf "skipping rejoin of %s (injected bug)" g))
        else join_group a g ~attempts:30)
      a.a_groups
  in
  let rec agent_event a _c ev =
    match ev with
    | Corona.Client.Delivered (u : T.update) ->
        record a
          (Observe.Delivered
             {
               group = u.group;
               seqno = u.seqno;
               sender = u.sender;
               kind = (match u.kind with T.Set_state -> "set" | T.Append_update -> "append");
               obj = u.obj;
               data = u.data;
             })
    | Corona.Client.Membership_changed { group; change; members } ->
        let change_s =
          match change with
          | T.Member_joined m -> Printf.sprintf "joined %s" m
          | T.Member_left m -> Printf.sprintf "left %s" m
          | T.Member_crashed m -> Printf.sprintf "crashed %s" m
        in
        record a
          (Observe.View
             {
               group;
               change = change_s;
               members = List.map (fun (m : T.member) -> m.member) members;
             })
    | Corona.Client.Lock_granted_later { group; lock } -> (
        record a (Observe.Lock_granted { group; lock });
        match Hashtbl.find_opt a.a_pending_locks (group, lock) with
        | Some hold_ms ->
            Hashtbl.remove a.a_pending_locks (group, lock);
            after (ms hold_ms) (fun () -> release_lock a group lock)
        | None ->
            (* a coordinator change can replay a queued acquire we no longer
               want (release re-forwarded as acquire); give it straight back *)
            after 0.05 (fun () -> release_lock a group lock))
    | Corona.Client.Shard_delivered { shard; update = u } ->
        (* synthesized per-stream group name: the unchanged total-order
           oracle then checks each shard's stream independently *)
        record a
          (Observe.Delivered
             {
               group = Printf.sprintf "%s#%d" u.T.group shard;
               seqno = u.T.seqno;
               sender = u.T.sender;
               kind = (match u.T.kind with T.Set_state -> "set" | T.Append_update -> "append");
               obj = u.T.obj;
               data = u.T.data;
             })
    | Corona.Client.Shard_view { group; bar; vector; op } ->
        record a (Observe.Shard_view { group; bar; vector; op })
    | Corona.Client.Shard_joined { group; vector } ->
        (* one stream (re)start marker per shard, at the snapshot baseline *)
        List.iteri
          (fun s next ->
            record a
              (Observe.Joined { group = Printf.sprintf "%s#%d" group s; next }))
          vector
    | Corona.Client.Group_was_deleted group ->
        record a (Observe.Note (Printf.sprintf "group %s deleted" group))
    | Corona.Client.Disconnected reason ->
        record a
          (Observe.Conn_lost
             { reason = Format.asprintf "%a" Net.Tcp.pp_close_reason reason });
        a.a_old <- a.a_client;
        a.a_client <- None;
        if a.a_want then begin
          if relay && bug.skip_failover then
            record a (Observe.Note "skipping relay failover (injected bug)")
          else after 0.5 (fun () -> reconnect_agent a)
        end
  and reconnect_agent a =
    if a.a_want && Net.Host.is_alive a.a_host && live_client a = None then begin
      let target = Deploy.client_target deploy a.a_idx in
      if not (Net.Host.is_alive target) then after 0.7 (fun () -> reconnect_agent a)
      else begin
        let on_connected c =
          a.a_client <- Some c;
          a.a_old <- None;
          record a (Observe.Connected { incarnation = Net.Host.epoch a.a_host });
          join_groups a
        in
        let on_failed () = after 0.7 (fun () -> reconnect_agent a) in
        match a.a_old with
        | Some old when single ->
            (* same root, surviving local replicas: the §6 reconnection
               path (Updates_since + sender-assisted resend); in relay
               mode [target] is whichever relay now owns the slice, so a
               member of a crashed relay fails over to the sibling and
               resyncs from its holdback baseline *)
            Corona.Client.reconnect old ~server:target ~on_connected
              ~on_failed ()
        | Some _ | None ->
            Corona.Client.connect fabric ~host:a.a_host ~server:target
              ~member:a.a_name
              ~on_event:(fun c ev -> agent_event a c ev)
              ~on_connected ~on_failed ()
      end
    end
  in
  (* --- bring the world up ---------------------------------------------- *)
  let creator_joined = ref false in
  Array.iter
    (fun a ->
      at_ms (200 + (150 * a.a_idx)) (fun () ->
          let on_connected c =
            a.a_client <- Some c;
            record a (Observe.Connected { incarnation = Net.Host.epoch a.a_host });
            if a.a_idx = 0 && not !creator_joined then begin
              creator_joined := true;
              List.iter
                (fun g ->
                  Corona.Client.create_group c ~group:g ~persistent:single
                    ~initial:[ ("o0", "seed:" ^ g) ]
                    ~k:(fun reply ->
                      match reply with
                      | Corona.Client.R_ok | Corona.Client.R_join _ -> ()
                      | Corona.Client.R_failed why ->
                          record a
                            (Observe.Note
                               (Printf.sprintf "create %s failed: %s" g why))
                      | _ -> ())
                    ())
                groups;
              after 0.2 (fun () -> join_groups a)
            end
            else join_groups a
          in
          Corona.Client.connect fabric ~host:a.a_host ~server:(Deploy.client_target deploy a.a_idx)
            ~member:a.a_name
            ~on_event:(fun c ev -> agent_event a c ev)
            ~on_connected
            ~on_failed:(fun () -> after 0.7 (fun () -> reconnect_agent a))
            ()))
    agents;
  (* --- wire the schedule ------------------------------------------------ *)
  let payload a size =
    a.a_payload <- a.a_payload + 1;
    let tag = Printf.sprintf "%s-%d:" a.a_name a.a_payload in
    let pad = max 1 (size - String.length tag) in
    tag ^ String.make pad 'x'
  in
  List.iter
    (fun ev ->
      match ev with
      | Schedule.Crash_server { server; at_ms = at; down_ms } ->
          at_ms at (fun () -> Deploy.crash_server deploy server);
          if single then at_ms (at + down_ms) (fun () -> Deploy.restart_server deploy)
      | Schedule.Client_churn { client; at_ms = at; down_ms; crash } ->
          let a = agents.(client mod Array.length agents) in
          at_ms at (fun () ->
              a.a_want <- false;
              if crash then begin
                record a Observe.Crashed;
                Net.Host.crash a.a_host
              end
              else begin
                match a.a_client with
                | Some c ->
                    Corona.Client.disconnect c;
                    a.a_old <- Some c;
                    a.a_client <- None;
                    record a (Observe.Conn_lost { reason = "graceful" })
                | None -> ()
              end);
          at_ms (at + down_ms) (fun () ->
              a.a_want <- true;
              if crash && not (Net.Host.is_alive a.a_host) then begin
                Net.Host.restart a.a_host;
                record a Observe.Restarted;
                (* the crashed process lost its in-memory replicas *)
                a.a_old <- None
              end;
              reconnect_agent a)
      | Schedule.Partition_servers { servers; at_ms = at; dur_ms } ->
          at_ms at (fun () -> Deploy.partition deploy ~isolated:servers);
          at_ms (at + dur_ms) (fun () -> Deploy.heal deploy);
          at_ms
            (at + dur_ms + 1_000)
            (fun () -> if not bug.skip_reconcile then Deploy.reconcile_after_heal deploy)
      | Schedule.Burst { client; group; at_ms = at; count; size } ->
          let a = agents.(client mod Array.length agents) in
          let g = group_name (group mod sched.Schedule.groups) in
          at_ms at (fun () ->
              match live_client a with
              | Some c when List.mem g (Corona.Client.joined_groups c) ->
                  for _ = 1 to count do
                    let n = a.a_payload in
                    Corona.Client.bcast_update c ~group:g
                      ~obj:(Printf.sprintf "o%d" (n mod 3))
                      ~data:(payload a size) ~mode:T.Sender_inclusive ()
                  done
              | Some _ | None ->
                  record a (Observe.Note (Printf.sprintf "burst on %s skipped" g)))
      | Schedule.Hot_burst { client; group; at_ms = at; count; size } ->
          let a = agents.(client mod Array.length agents) in
          let g = group_name (group mod sched.Schedule.groups) in
          at_ms at (fun () ->
              match live_client a with
              | Some c when List.mem g (Corona.Client.joined_groups c) ->
                  (* every update hits one object, so under sharding one
                     stream absorbs the whole burst *)
                  for _ = 1 to count do
                    Corona.Client.bcast_update c ~group:g ~obj:"hot"
                      ~data:(payload a size) ~mode:T.Sender_inclusive ()
                  done
              | Some _ | None ->
                  record a (Observe.Note (Printf.sprintf "hot burst on %s skipped" g)))
      | Schedule.Lock_cycle { client; group; lock; at_ms = at; hold_ms } ->
          let a = agents.(client mod Array.length agents) in
          let g = group_name (group mod sched.Schedule.groups) in
          let l = Printf.sprintf "lk%d" lock in
          at_ms at (fun () ->
              match live_client a with
              | Some c when List.mem g (Corona.Client.joined_groups c) ->
                  Corona.Client.acquire_lock c ~group:g ~lock:l ~k:(fun reply ->
                      match reply with
                      | Corona.Client.R_lock `Granted ->
                          record a (Observe.Lock_granted { group = g; lock = l });
                          after (ms hold_ms) (fun () -> release_lock a g l)
                      | Corona.Client.R_lock (`Busy _) ->
                          Hashtbl.replace a.a_pending_locks (g, l) hold_ms
                      | Corona.Client.R_failed why ->
                          record a
                            (Observe.Note
                               (Printf.sprintf "acquire %s/%s failed: %s" g l why))
                      | _ -> ())
              | Some _ | None ->
                  record a (Observe.Note (Printf.sprintf "lock on %s skipped" g)))
      | Schedule.Crash_relay { relay = r; at_ms = at } ->
          at_ms at (fun () -> Deploy.crash_relay deploy r)
      | Schedule.Reduce { client; group; at_ms = at } ->
          let a = agents.(client mod Array.length agents) in
          let g = group_name (group mod sched.Schedule.groups) in
          at_ms at (fun () ->
              match live_client a with
              | Some c when List.mem g (Corona.Client.joined_groups c) ->
                  Corona.Client.reduce_log c ~group:g ~k:(fun reply ->
                      match reply with
                      | Corona.Client.R_reduced n ->
                          record a
                            (Observe.Note (Printf.sprintf "reduced %s to %d" g n))
                      | _ -> ())
              | Some _ | None -> ())
      )
    sched.Schedule.events;
  (* The relay-crash hazard injection: on top of whatever the schedule
     drew, deterministically kill relay 0 mid-run. Not a bug — failover
     must keep every oracle green. *)
  if relay && bug.relay_crash then
    at_ms (sched.Schedule.horizon_ms / 2) (fun () -> Deploy.crash_relay deploy 0);
  (* --- run to quiescence ------------------------------------------------ *)
  let settle = if single then 8.0 else 20.0 in
  Sim.Engine.run engine ~until:(ms sched.Schedule.horizon_ms +. settle);
  (* --- gather evidence -------------------------------------------------- *)
  let obs = Array.to_list (Array.map (fun a -> a.a_obs) agents) in
  let group_ids = Deploy.group_ids deploy in
  let client_states =
    Array.to_list agents
    |> List.concat_map (fun a ->
           match live_client a with
           | None -> []
           | Some c ->
               List.filter_map
                 (fun g ->
                   Option.map
                     (fun st -> (a.a_name, g, Corona.Shared_state.digest st))
                     (Corona.Client.replica c g))
                 (List.sort String.compare (Corona.Client.joined_groups c)))
  in
  let expected_members =
    List.map
      (fun g ->
        ( g,
          Array.to_list agents
          |> List.filter_map (fun a ->
                 if relay then
                   (* want-based, not connection-based: an agent that wants
                      to be in the group but stalled (e.g. the injected
                      skip-failover) must still be judged — that is exactly
                      the completeness oracle's job *)
                   if
                     a.a_want
                     && Net.Host.is_alive a.a_host
                     && Hashtbl.mem a.a_joined_once g
                   then Some a.a_name
                   else None
                 else
                   match live_client a with
                   | Some c when List.mem g (Corona.Client.joined_groups c) ->
                       Some a.a_name
                   | Some _ | None -> None) ))
      group_ids
  in
  let input =
    {
      Oracles.i_copies = List.map (fun g -> (g, Deploy.copies deploy g)) group_ids;
      i_journals = Deploy.lock_journals deploy;
      i_clients = obs;
      i_client_states = client_states;
      i_members = List.map (fun g -> (g, Deploy.members deploy g)) group_ids;
      i_expected_members = expected_members;
      i_eras = Deploy.restart_times deploy;
      i_barriers = Deploy.barrier_frames deploy;
      i_shards = Deploy.shards deploy;
      i_relay = relay;
    }
  in
  let trace = List.concat_map Observe.lines obs in
  let deliveries =
    List.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (_, e) ->
            match e with Observe.Delivered _ -> acc + 1 | _ -> acc)
          acc (Observe.entries o))
      0 obs
  in
  { r_violations = Oracles.check input; r_trace = trace; r_deliveries = deliveries }
