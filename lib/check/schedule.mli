(** Randomized fault schedules. A schedule is pure data: deployment shape
    plus a time-ordered list of fault / traffic events, all times in
    integer milliseconds of virtual time so schedules print exactly and
    replay bit-for-bit. Every draw comes from [Sim.Rng] — never
    wall-clock. *)

type kind =
  | Single of { sync_log : bool }
  | Replicated of { replicas : int }
  | Sharded of { replicas : int; shards : int }
      (** replicated deployment with N-way partitioned sequencing: every
          group's keyspace is spread over [shards] per-shard seqno streams,
          cross-shard ops ride the two-phase barrier *)
  | Relay of { relays : int }
      (** single root fronted by [relays] edge relays: every client
          connects through its slice's relay, fan-out takes the
          hierarchical Relay_fanout path, and a relay crash fails its
          members over to the next alive sibling *)

type event =
  | Crash_server of { server : int; at_ms : int; down_ms : int }
      (** single deployment: restart (same storage, §6 recovery) after
          [down_ms]; replicated: [down_ms = 0] and the crash is permanent
          (failover, not restart, is the recovery path of §4.2) *)
  | Client_churn of { client : int; at_ms : int; down_ms : int; crash : bool }
      (** [crash = false]: graceful disconnect, reconnect + rejoin after
          [down_ms]; [crash = true]: host crash, restart then rejoin *)
  | Partition_servers of { servers : int list; at_ms : int; dur_ms : int }
      (** isolate these (client-free) server indexes from everyone else,
          heal after [dur_ms] and reconcile *)
  | Burst of { client : int; group : int; at_ms : int; count : int; size : int }
  | Hot_burst of { client : int; group : int; at_ms : int; count : int; size : int }
      (** skewed key distribution: every update of the burst hits ONE
          fixed object — one shard's stream takes the whole load *)
  | Lock_cycle of { client : int; group : int; lock : int; at_ms : int; hold_ms : int }
  | Reduce of { client : int; group : int; at_ms : int }
  | Crash_relay of { relay : int; at_ms : int }
      (** relay deployments: kill the relay's host permanently; its
          members fail over to the next alive sibling *)

type t = {
  kind : kind;
  clients : int;
  groups : int;
  horizon_ms : int;
  events : event list;  (** sorted by start time *)
}

val event_at : event -> int
(** Start time, ms of virtual time. *)

val event_span : event -> int * int
(** Closed interval of virtual time the event influences, with slack for
    the reconnect/rejoin tail. *)

val crash_guard_ms : int
(** Exclusive guard interval around every server-crash event: traffic
    scheduled inside it is dropped, because §6 recovery legitimately
    reuses sequence numbers for updates that never reached the disk. *)

val generate : ?smoke:bool -> ?sharded:bool -> ?relay:bool -> Sim.Rng.t -> t
(** Draw a schedule. [smoke] shrinks the profile for quick runs;
    [sharded] forces a sharded replicated deployment and [relay] a
    relay-fronted single root (the classic RNG draw sequence is untouched
    when both are off, so pinned seeds keep replaying the schedules that
    exposed historical bugs). *)

val pp_ocaml : seed:int64 -> Format.formatter -> t -> unit
(** A copy-pasteable OCaml scenario: feed it back through
    [Check.Runner.execute] to replay the exact run. *)
